//! The node-automaton abstraction.
//!
//! A distributed algorithm in the paper's model is "a copy of a node algorithm
//! determining its response to every kind of message received" (§2). The
//! [`Protocol`] trait is that node algorithm; the [`Context`] trait is the only
//! window it gets on the outside world: its own identity, its incident links
//! and the ability to send messages over them. There are deliberately no
//! timers and no global information — exactly the event-driven model of the
//! paper.

use crate::message::NetMessage;
use mdst_graph::NodeId;

/// The interface a running node uses to interact with the network.
///
/// Implemented by both runtimes (simulator and threaded); protocols never see
/// which one is driving them.
pub trait Context<M: NetMessage> {
    /// Identity of this node.
    fn id(&self) -> NodeId;

    /// Identities of the neighbours (the endpoints of this node's links),
    /// sorted by identity.
    fn neighbors(&self) -> &[NodeId];

    /// Sends `msg` to neighbour `to`. Panics if `to` is not a neighbour —
    /// a protocol addressing a non-neighbour is a bug, not a runtime condition.
    fn send(&mut self, to: NodeId, msg: M);

    /// Number of nodes in the network.
    ///
    /// The paper's model lets every node know `n` only implicitly (identities
    /// are bounded); exposing it keeps the bit-accounting honest and matches
    /// the usual "named network" assumption.
    fn network_size(&self) -> usize;
}

/// A distributed node algorithm.
pub trait Protocol: Send + 'static {
    /// The message alphabet of the protocol.
    type Message: NetMessage;

    /// Called exactly once when the node spontaneously wakes up. The paper's
    /// algorithms are "started independently by all nodes, perhaps at
    /// different times"; the runtime decides the wake-up schedule.
    fn on_start(&mut self, ctx: &mut dyn Context<Self::Message>);

    /// Called for every message delivered to this node.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut dyn Context<Self::Message>,
    );

    /// Whether the node has locally terminated. Used by the runtimes for
    /// sanity checks and by tests for termination-by-process assertions; the
    /// protocols must not rely on it for correctness (termination must be
    /// decided by messages, per the paper).
    fn is_terminated(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits::message_bits;

    /// A trivial protocol used to exercise the trait object plumbing.
    #[derive(Debug, Clone)]
    struct Ping;

    impl NetMessage for Ping {
        fn kind(&self) -> &'static str {
            "Ping"
        }
        fn encoded_bits(&self) -> usize {
            message_bits(2, 0)
        }
    }

    struct Echo {
        got: usize,
    }

    impl Protocol for Echo {
        type Message = Ping;
        fn on_start(&mut self, ctx: &mut dyn Context<Ping>) {
            let targets: Vec<NodeId> = ctx.neighbors().to_vec();
            for to in targets {
                ctx.send(to, Ping);
            }
        }
        fn on_message(&mut self, _from: NodeId, _msg: Ping, _ctx: &mut dyn Context<Ping>) {
            self.got += 1;
        }
        fn is_terminated(&self) -> bool {
            self.got > 0
        }
    }

    struct FakeCtx {
        id: NodeId,
        neighbors: Vec<NodeId>,
        sent: Vec<(NodeId, Ping)>,
    }

    impl Context<Ping> for FakeCtx {
        fn id(&self) -> NodeId {
            self.id
        }
        fn neighbors(&self) -> &[NodeId] {
            &self.neighbors
        }
        fn send(&mut self, to: NodeId, msg: Ping) {
            self.sent.push((to, msg));
        }
        fn network_size(&self) -> usize {
            2
        }
    }

    #[test]
    fn protocol_can_drive_a_fake_context() {
        let mut ctx = FakeCtx {
            id: NodeId(0),
            neighbors: vec![NodeId(1)],
            sent: Vec::new(),
        };
        let mut node = Echo { got: 0 };
        node.on_start(&mut ctx);
        assert_eq!(ctx.sent.len(), 1);
        assert!(!node.is_terminated());
        node.on_message(NodeId(1), Ping, &mut ctx);
        assert!(node.is_terminated());
    }
}
