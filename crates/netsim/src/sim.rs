//! Deterministic discrete-event simulator.
//!
//! The simulator executes a [`Protocol`] on every node of a communication
//! graph under the model of §2 of the paper: asynchronous, event-driven,
//! FIFO bidirectional links, nodes started independently (possibly at
//! different times). It is completely deterministic for a given configuration,
//! which makes the experiment tables reproducible and lets property tests
//! shrink failures.
//!
//! Time is a `u64` clock that only the simulator sees; protocols never observe
//! it (they are event-driven, exactly as the paper requires). The
//! [`Metrics`] produced at quiescence contain both the delay-model-dependent
//! clock and the delay-independent causal-chain length the paper calls "time
//! complexity".

use crate::cancel::CancelToken;
use crate::delay::{DelayModel, DelaySampler};
use crate::fault::FaultPlan;
use crate::message::NetMessage;
use crate::metrics::Metrics;
use crate::protocol::{Context, Protocol};
use crate::trace::{TraceEvent, TraceEventKind, TraceRecorder};
use mdst_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashMap};
use std::fmt;
use std::sync::Arc;

/// When each node spontaneously wakes up.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum StartModel {
    /// Every node wakes up at time zero.
    #[default]
    Simultaneous,
    /// Every node wakes up at an independent uniformly random time in
    /// `[0, max_offset]`, reproducibly derived from `seed`.
    Staggered {
        /// Largest possible wake-up time.
        max_offset: u64,
        /// Seed of the wake-up schedule.
        seed: u64,
    },
    /// Only the listed nodes wake up spontaneously (the rest are woken by the
    /// first message they receive — useful for single-initiator protocols).
    Selected(Vec<NodeId>),
}

/// Simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Link delay model.
    pub delay: DelayModel,
    /// Wake-up schedule.
    pub start: StartModel,
    /// Hard cap on processed events; exceeding it aborts the run with
    /// [`SimError::EventLimitExceeded`] (a non-termination guard for tests).
    pub max_events: u64,
    /// Whether to keep a full [`TraceRecorder`] of sends and deliveries.
    pub record_trace: bool,
    /// Faults injected into the run (message loss, node crashes, link cuts).
    /// The default plan is benign: nothing is injected and the simulator
    /// behaves exactly as it would without a fault layer.
    pub faults: FaultPlan,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            delay: DelayModel::Unit,
            start: StartModel::Simultaneous,
            max_events: 50_000_000,
            record_trace: false,
            faults: FaultPlan::none(),
        }
    }
}

/// Errors the simulator can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The event cap was hit before the network became quiescent.
    EventLimitExceeded {
        /// The configured cap.
        limit: u64,
    },
    /// The configuration is inconsistent with the simulated graph (start list
    /// out of range or empty, degenerate delay range, bad fault plan, …).
    InvalidConfig(String),
    /// A [`CancelToken`] installed via [`Simulator::set_cancel`] was raised;
    /// the run stopped at an event boundary with its state intact.
    Cancelled,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::EventLimitExceeded { limit } => {
                write!(f, "event limit of {limit} exceeded before quiescence")
            }
            SimError::InvalidConfig(why) => write!(f, "invalid simulator config: {why}"),
            SimError::Cancelled => write!(f, "run cancelled before quiescence"),
        }
    }
}

impl std::error::Error for SimError {}

/// What a scheduled event does when it fires.
#[derive(Debug, Clone)]
enum EventKind<M> {
    /// Spontaneous wake-up of the node.
    Start,
    /// Delivery of a message.
    Message {
        from: NodeId,
        msg: M,
        causal_depth: u64,
        /// Run-unique message identity assigned at send time (see
        /// [`crate::trace::TraceEvent::msg_id`]).
        msg_id: u64,
        /// Per-sender per-directed-link sequence number assigned at send time
        /// (see [`crate::trace::TraceEvent::seq`]).
        link_seq: u64,
    },
    /// Crash-stop of the node (fault injection).
    Crash,
}

#[derive(Debug, Clone)]
struct Event<M> {
    time: u64,
    seq: u64,
    to: NodeId,
    kind: EventKind<M>,
}

impl<M> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<M> Eq for Event<M> {}
impl<M> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Context handed to a protocol while it processes one event: sends are
/// buffered and scheduled by the simulator after the handler returns.
struct SimCtx<'a, M> {
    id: NodeId,
    neighbors: &'a [NodeId],
    network_size: usize,
    outbox: Vec<(NodeId, M)>,
}

impl<M: NetMessage> Context<M> for SimCtx<'_, M> {
    fn id(&self) -> NodeId {
        self.id
    }
    fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }
    fn send(&mut self, to: NodeId, msg: M) {
        assert!(
            self.neighbors.binary_search(&to).is_ok(),
            "protocol bug: {} tried to send {:?} to non-neighbour {}",
            self.id,
            msg,
            to
        );
        self.outbox.push((to, msg));
    }
    fn network_size(&self) -> usize {
        self.network_size
    }
}

/// The discrete-event simulator. See the module documentation.
pub struct Simulator<P: Protocol> {
    nodes: Vec<P>,
    /// Shared, immutable topology. Neighbour lists are borrowed straight out
    /// of the graph's CSR rows — the simulator materialises no adjacency of
    /// its own, so thousands of runs can share one `Arc<Graph>`.
    graph: Arc<Graph>,
    queue: BinaryHeap<Event<P::Message>>,
    seq: u64,
    clock: u64,
    processed_events: u64,
    started: Vec<bool>,
    /// Nodes that have crash-stopped (fault injection); a crashed node
    /// processes no events and every message addressed to it is dropped.
    crashed: Vec<bool>,
    sampler: DelaySampler,
    /// Loss coin stream, present only when the fault plan has `loss > 0`
    /// (so benign runs draw no extra randomness at all).
    loss_rng: Option<SmallRng>,
    /// Cut time per directed link (both directions of every scheduled cut).
    cut_at: HashMap<(usize, usize), u64>,
    /// Last scheduled delivery time per directed link, used to keep links FIFO
    /// even under non-monotone random delays.
    link_last_delivery: HashMap<(usize, usize), u64>,
    /// Next run-unique message id (ids start at 1; 0 is the "no message"
    /// sentinel on crash trace events). Only advanced while tracing.
    next_msg_id: u64,
    /// Next per-directed-link send sequence number. Only maintained while
    /// tracing (the FIFO order itself is enforced by `link_last_delivery`).
    link_seq: HashMap<(usize, usize), u64>,
    metrics: Metrics,
    trace: TraceRecorder,
    config: SimConfig,
    /// Cooperative cancellation flag, polled between events in [`Simulator::run`]
    /// (absent on uncontrolled runs, which then pay no atomic loads at all).
    cancel: Option<CancelToken>,
}

impl<P: Protocol> Simulator<P> {
    /// Builds a simulator for `graph`, creating one protocol instance per node
    /// through `factory` (which receives the node's identity and its sorted
    /// neighbour list).
    ///
    /// The configuration is validated against the graph up front:
    /// [`StartModel::Selected`] lists must be non-empty and in range, the
    /// delay model must satisfy its documented `1 ≤ min ≤ max` contract, and
    /// the fault plan must reference existing nodes and edges. Violations
    /// return [`SimError::InvalidConfig`] instead of panicking (or silently
    /// succeeding) deep inside [`Simulator::step`].
    pub fn new(
        graph: &Arc<Graph>,
        config: SimConfig,
        mut factory: impl FnMut(NodeId, &[NodeId]) -> P,
    ) -> Result<Self, SimError> {
        Self::validate_config(graph, &config)?;
        let n = graph.node_count();
        let nodes: Vec<P> = (0..n)
            .map(|u| factory(NodeId::new(u), graph.neighbor_slice(NodeId::new(u))))
            .collect();
        let trace = if config.record_trace {
            TraceRecorder::enabled()
        } else {
            TraceRecorder::disabled()
        };
        let sampler = config.delay.sampler();
        let loss_rng = if config.faults.loss > 0.0 {
            Some(SmallRng::seed_from_u64(config.faults.seed))
        } else {
            None
        };
        let mut cut_at = HashMap::new();
        for cut in &config.faults.cuts {
            let (a, b) = (cut.a.index(), cut.b.index());
            for key in [(a, b), (b, a)] {
                let entry = cut_at.entry(key).or_insert(cut.at);
                *entry = (*entry).min(cut.at);
            }
        }
        let mut sim = Simulator {
            nodes,
            graph: Arc::clone(graph),
            queue: BinaryHeap::new(),
            seq: 0,
            clock: 0,
            processed_events: 0,
            started: vec![false; n],
            crashed: vec![false; n],
            sampler,
            loss_rng,
            cut_at,
            link_last_delivery: HashMap::new(),
            next_msg_id: 1,
            link_seq: HashMap::new(),
            metrics: Metrics::new(n),
            trace,
            config,
            cancel: None,
        };
        sim.schedule_crashes();
        sim.schedule_starts();
        Ok(sim)
    }

    fn validate_config(graph: &Graph, config: &SimConfig) -> Result<(), SimError> {
        config.delay.validate().map_err(SimError::InvalidConfig)?;
        if let StartModel::Selected(list) = &config.start {
            if list.is_empty() {
                return Err(SimError::InvalidConfig(
                    "StartModel::Selected with an empty list: no node would ever \
                     wake up, the run would be a silent no-op"
                        .to_string(),
                ));
            }
            let n = graph.node_count();
            for &node in list {
                if node.index() >= n {
                    return Err(SimError::InvalidConfig(format!(
                        "StartModel::Selected references node {node} but the \
                         graph has {n} nodes"
                    )));
                }
            }
        }
        config
            .faults
            .validate(graph)
            .map_err(SimError::InvalidConfig)
    }

    /// Crash events go into the queue before the start events, so a crash and
    /// a start scheduled at the same instant resolve as crash-first.
    fn schedule_crashes(&mut self) {
        let crashes = self.config.faults.crashes.clone();
        for crash in crashes {
            let seq = self.next_seq();
            self.queue.push(Event {
                time: crash.at,
                seq,
                to: crash.node,
                kind: EventKind::Crash,
            });
        }
    }

    fn schedule_starts(&mut self) {
        let n = self.nodes.len();
        let starts: Vec<(NodeId, u64)> = match &self.config.start {
            StartModel::Simultaneous => (0..n).map(|u| (NodeId::new(u), 0)).collect(),
            StartModel::Staggered { max_offset, seed } => {
                let mut rng = SmallRng::seed_from_u64(*seed);
                (0..n)
                    .map(|u| (NodeId::new(u), rng.gen_range(0..=*max_offset)))
                    .collect()
            }
            StartModel::Selected(list) => list.iter().map(|&u| (u, 0)).collect(),
        };
        for (node, time) in starts {
            let seq = self.next_seq();
            self.queue.push(Event {
                time,
                seq,
                to: node,
                kind: EventKind::Start,
            });
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    /// Number of nodes in the simulated network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The shared topology this simulator runs on.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// Immutable access to a node's protocol state (for assertions and
    /// extracting results after a run).
    pub fn node(&self, id: NodeId) -> &P {
        &self.nodes[id.index()]
    }

    /// Immutable access to every node.
    pub fn nodes(&self) -> &[P] {
        &self.nodes
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The trace recorded so far (empty unless `record_trace` was set).
    pub fn trace(&self) -> &TraceRecorder {
        &self.trace
    }

    /// The current simulated clock.
    pub fn now(&self) -> u64 {
        self.clock
    }

    /// Consumes the simulator, returning the node states and the metrics.
    pub fn into_parts(self) -> (Vec<P>, Metrics, TraceRecorder) {
        (self.nodes, self.metrics, self.trace)
    }

    /// Processes a single event. Returns `false` when the queue is empty
    /// (quiescence reached).
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        self.clock = self.clock.max(event.time);
        self.processed_events += 1;
        let to = event.to;
        // Crash events flip the crash flag and nothing else; they do not count
        // as protocol activity, so they leave `quiescence_time` alone.
        if matches!(event.kind, EventKind::Crash) {
            if !self.crashed[to.index()] {
                self.crashed[to.index()] = true;
                self.metrics.record_crash();
                if self.trace.is_enabled() {
                    self.trace.record(TraceEvent {
                        time: event.time,
                        kind: TraceEventKind::Crash,
                        from: to,
                        to,
                        message_kind: "Crash".into(),
                        msg_id: 0,
                        seq: 0,
                    });
                }
            }
            return true;
        }
        // A crashed node processes nothing; messages addressed to it are lost.
        if self.crashed[to.index()] {
            if let EventKind::Message {
                from,
                msg,
                msg_id,
                link_seq,
                ..
            } = &event.kind
            {
                // The network carried the message until now, so the delivery
                // attempt still advances the quiescence clock; a start event
                // of a corpse is a pure no-op and does not.
                self.metrics.record_activity(event.time);
                self.metrics.record_drop();
                if self.trace.is_enabled() {
                    self.trace.record(TraceEvent {
                        time: event.time,
                        kind: TraceEventKind::Drop,
                        from: *from,
                        to,
                        message_kind: msg.kind().into(),
                        msg_id: *msg_id,
                        seq: *link_seq,
                    });
                }
            }
            return true;
        }
        // Starts and deliveries are protocol activity: the quiescence clock
        // follows every one of them, so staggered-start and message-free runs
        // report the true final clock (not just the last delivery time).
        self.metrics.record_activity(event.time);
        let (causal_depth, sends) = {
            // Split borrows: the node is taken from `nodes`, the neighbour
            // slice straight from the shared graph; both are disjoint fields.
            let mut ctx = SimCtx {
                id: to,
                neighbors: self.graph.neighbor_slice(to),
                network_size: self.nodes.len(),
                outbox: Vec::new(),
            };
            let node = &mut self.nodes[to.index()];
            let depth = match event.kind {
                EventKind::Start => {
                    if self.started[to.index()] {
                        // A node never starts twice.
                        return true;
                    }
                    self.started[to.index()] = true;
                    node.on_start(&mut ctx);
                    0
                }
                EventKind::Message {
                    from,
                    msg,
                    causal_depth,
                    msg_id,
                    link_seq,
                } => {
                    // A message wakes up a node that has not spontaneously
                    // started yet (the standard convention for asynchronous
                    // wake-up): deliver the start first.
                    if !self.started[to.index()] {
                        self.started[to.index()] = true;
                        node.on_start(&mut ctx);
                    }
                    self.metrics.record_delivery(
                        from.index(),
                        to.index(),
                        msg.kind(),
                        msg.encoded_bits(),
                        causal_depth,
                        event.time,
                    );
                    if self.trace.is_enabled() {
                        self.trace.record(TraceEvent {
                            time: event.time,
                            kind: TraceEventKind::Deliver,
                            from,
                            to,
                            message_kind: msg.kind().into(),
                            msg_id,
                            seq: link_seq,
                        });
                    }
                    node.on_message(from, msg, &mut ctx);
                    causal_depth
                }
                EventKind::Crash => unreachable!("crash events return before the handler"),
            };
            (depth, ctx.outbox)
        };
        // Schedule the buffered sends, dropping the ones fault injection eats.
        let now = event.time;
        for (target, msg) in sends {
            let key = (to.index(), target.index());
            // Message identities only exist for auditable traces: a benign
            // untraced run allocates nothing and the ids stay at the sentinel.
            let (msg_id, link_seq) = if self.trace.is_enabled() {
                let id = self.next_msg_id;
                self.next_msg_id += 1;
                let seq_slot = self.link_seq.entry(key).or_insert(0);
                let seq = *seq_slot;
                *seq_slot += 1;
                (id, seq)
            } else {
                (0, 0)
            };
            if self.trace.is_enabled() {
                self.trace.record(TraceEvent {
                    time: now,
                    kind: TraceEventKind::Send,
                    from: to,
                    to: target,
                    message_kind: msg.kind().into(),
                    msg_id,
                    seq: link_seq,
                });
            }
            // A cut link eats every send at or after the cut time (messages
            // already in flight are still delivered).
            let cut = self
                .cut_at
                .get(&key)
                .is_some_and(|&cut_time| now >= cut_time);
            // Then the loss coin (a cut send burns no coin). Dropped sends
            // consume neither a delay sample nor a FIFO slot, so the
            // surviving traffic keeps its per-link FIFO ordering.
            let lost = cut
                || self
                    .loss_rng
                    .as_mut()
                    .is_some_and(|rng| rng.gen_bool(self.config.faults.loss));
            if lost {
                self.metrics.record_drop();
                if self.trace.is_enabled() {
                    self.trace.record(TraceEvent {
                        time: now,
                        kind: TraceEventKind::Drop,
                        from: to,
                        to: target,
                        message_kind: msg.kind().into(),
                        msg_id,
                        seq: link_seq,
                    });
                }
                continue;
            }
            let delay = self.sampler.sample(to, target);
            let earliest_fifo = self.link_last_delivery.get(&key).copied().unwrap_or(0);
            let delivery = (now + delay.max(1)).max(earliest_fifo);
            self.link_last_delivery.insert(key, delivery);
            let seq = self.next_seq();
            self.queue.push(Event {
                time: delivery,
                seq,
                to: target,
                kind: EventKind::Message {
                    from: to,
                    msg,
                    causal_depth: causal_depth + 1,
                    msg_id,
                    link_seq,
                },
            });
        }
        true
    }

    /// Installs a cooperative cancellation token: [`Simulator::run`] polls it
    /// every [`Self::CANCEL_POLL_STRIDE`] events and returns
    /// [`SimError::Cancelled`] at the next boundary once it is raised.
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Events between cancellation polls in [`Simulator::run`]: frequent
    /// enough that cancellation lands within microseconds, sparse enough
    /// that uncancelled runs pay about one atomic load per thousand events.
    pub const CANCEL_POLL_STRIDE: u64 = 1024;

    /// Runs the simulation to quiescence (empty event queue).
    pub fn run(&mut self) -> Result<(), SimError> {
        while self.processed_events < self.config.max_events {
            if self.processed_events.is_multiple_of(Self::CANCEL_POLL_STRIDE)
                && self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
            {
                return Err(SimError::Cancelled);
            }
            if !self.step() {
                return Ok(());
            }
        }
        if self.queue.is_empty() {
            Ok(())
        } else {
            Err(SimError::EventLimitExceeded {
                limit: self.config.max_events,
            })
        }
    }

    /// Whether every node's protocol reports local termination.
    pub fn all_terminated(&self) -> bool {
        self.nodes.iter().all(|p| p.is_terminated())
    }

    /// Which nodes have crash-stopped (always all-false under a benign fault
    /// plan).
    pub fn crashed(&self) -> &[bool] {
        &self.crashed
    }

    /// Whether every *live* (non-crashed) node reports local termination —
    /// the strongest termination a faulty run can achieve.
    pub fn all_live_terminated(&self) -> bool {
        self.nodes
            .iter()
            .zip(&self.crashed)
            .all(|(p, &dead)| dead || p.is_terminated())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::bits::message_bits;
    use mdst_graph::generators;

    use crate::fault::{CrashAt, CutAt};

    /// Flood protocol: the node with identity 0 floods a token; every node
    /// forwards it the first time it sees it. Classic broadcast, n-1 .. m
    /// messages depending on topology.
    #[derive(Debug, Clone)]
    struct Token {
        hops: u64,
        n: usize,
    }

    impl NetMessage for Token {
        fn kind(&self) -> &'static str {
            "Token"
        }
        fn encoded_bits(&self) -> usize {
            message_bits(self.n, 1)
        }
    }

    struct Flood {
        id: NodeId,
        seen: bool,
        max_hops_seen: u64,
    }

    impl Protocol for Flood {
        type Message = Token;
        fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
            if self.id == NodeId(0) && !self.seen {
                self.seen = true;
                let targets: Vec<NodeId> = ctx.neighbors().to_vec();
                let n = ctx.network_size();
                for t in targets {
                    ctx.send(t, Token { hops: 1, n });
                }
            }
        }
        fn on_message(&mut self, from: NodeId, msg: Token, ctx: &mut dyn Context<Token>) {
            self.max_hops_seen = self.max_hops_seen.max(msg.hops);
            if !self.seen {
                self.seen = true;
                let targets: Vec<NodeId> = ctx.neighbors().filter_targets(from);
                let n = ctx.network_size();
                for t in targets {
                    ctx.send(
                        t,
                        Token {
                            hops: msg.hops + 1,
                            n,
                        },
                    );
                }
            }
        }
        fn is_terminated(&self) -> bool {
            self.seen
        }
    }

    /// Small helper so the test protocol reads naturally.
    trait FilterTargets {
        fn filter_targets(&self, skip: NodeId) -> Vec<NodeId>;
    }
    impl FilterTargets for [NodeId] {
        fn filter_targets(&self, skip: NodeId) -> Vec<NodeId> {
            self.iter().copied().filter(|&x| x != skip).collect()
        }
    }

    fn flood_sim(g: &Arc<Graph>, config: SimConfig) -> Simulator<Flood> {
        Simulator::new(g, config, |id, _| Flood {
            id,
            seen: false,
            max_hops_seen: 0,
        })
        .expect("valid config")
    }

    #[test]
    fn flood_reaches_every_node_on_a_path() {
        let g = Arc::new(generators::path(6).unwrap());
        let mut sim = flood_sim(&g, SimConfig::default());
        sim.run().unwrap();
        assert!(sim.all_terminated());
        // On a path the flood sends exactly one token over each edge away from
        // node 0, plus the backward token each internal node sends to its
        // predecessor (it does not know who already has the token).
        assert!(sim.metrics().messages_total >= 5);
        assert_eq!(sim.metrics().causal_time, 5);
        assert_eq!(sim.metrics().quiescence_time, 5);
    }

    #[test]
    fn flood_message_count_on_complete_graph_is_quadratic() {
        let g = Arc::new(generators::complete(8).unwrap());
        let mut sim = flood_sim(&g, SimConfig::default());
        sim.run().unwrap();
        assert!(sim.all_terminated());
        // Every node forwards to all neighbours except the one it heard from:
        // total is at least 2m - (n - 1) under any schedule... just check the
        // broad band: between n-1 and 2m.
        let m = g.edge_count() as u64;
        assert!(sim.metrics().messages_total >= 7);
        assert!(sim.metrics().messages_total <= 2 * m);
    }

    #[test]
    fn unit_delay_runs_are_deterministic() {
        let g = Arc::new(generators::gnp_connected(24, 0.2, 3).unwrap());
        let mut a = flood_sim(&g, SimConfig::default());
        let mut b = flood_sim(&g, SimConfig::default());
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.metrics(), b.metrics());
    }

    #[test]
    fn random_delay_runs_are_seed_deterministic() {
        let g = Arc::new(generators::gnp_connected(20, 0.3, 9).unwrap());
        let cfg = SimConfig {
            delay: DelayModel::UniformRandom {
                min: 1,
                max: 9,
                seed: 77,
            },
            ..Default::default()
        };
        let mut a = flood_sim(&g, cfg.clone());
        let mut b = flood_sim(&g, cfg);
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.all_terminated());
    }

    #[test]
    fn staggered_start_still_terminates() {
        let g = Arc::new(generators::grid(4, 4).unwrap());
        let cfg = SimConfig {
            start: StartModel::Staggered {
                max_offset: 50,
                seed: 5,
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert!(sim.all_terminated());
    }

    #[test]
    fn selected_start_wakes_only_initiator_until_messages_arrive() {
        let g = Arc::new(generators::path(4).unwrap());
        let cfg = SimConfig {
            start: StartModel::Selected(vec![NodeId(0)]),
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert!(sim.all_terminated());
    }

    #[test]
    fn selected_start_rejects_out_of_range_and_empty_lists() {
        let g = Arc::new(generators::path(4).unwrap());
        let oob = SimConfig {
            start: StartModel::Selected(vec![NodeId(0), NodeId(7)]),
            ..Default::default()
        };
        let err = Simulator::new(&g, oob, |id, _| Flood {
            id,
            seen: false,
            max_hops_seen: 0,
        })
        .err()
        .expect("config must be rejected");
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        assert!(err.to_string().contains("v7"), "{err}");

        let empty = SimConfig {
            start: StartModel::Selected(Vec::new()),
            ..Default::default()
        };
        let err = Simulator::new(&g, empty, |id, _| Flood {
            id,
            seen: false,
            max_hops_seen: 0,
        })
        .err()
        .expect("config must be rejected");
        assert!(err.to_string().contains("empty"), "{err}");
    }

    #[test]
    fn degenerate_delay_ranges_are_rejected_at_construction() {
        let g = Arc::new(generators::path(4).unwrap());
        for delay in [
            DelayModel::UniformRandom {
                min: 0,
                max: 4,
                seed: 1,
            },
            DelayModel::PerLinkFixed {
                min: 3,
                max: 2,
                seed: 1,
            },
        ] {
            let cfg = SimConfig {
                delay,
                ..Default::default()
            };
            let err = Simulator::new(&g, cfg, |id, _| Flood {
                id,
                seen: false,
                max_hops_seen: 0,
            })
            .err()
            .expect("config must be rejected");
            assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        }
    }

    #[test]
    fn quiescence_time_covers_late_starts() {
        // Node 3 of a path wakes long after the flood from node 0 has died
        // down; the quiescence clock must reflect that late start, matching
        // the final simulator clock.
        let g = Arc::new(generators::path(4).unwrap());
        let cfg = SimConfig {
            start: StartModel::Staggered {
                max_offset: 500,
                seed: 11,
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert_eq!(
            sim.metrics().quiescence_time,
            sim.now(),
            "quiescence time must equal the clock at the last start/delivery"
        );
    }

    #[test]
    fn fault_events_do_not_inflate_quiescence_time() {
        // Node 1 of a two-node path crashes at t=0; node 0 crashes long after
        // all traffic died down. The flood's one token is dropped at the
        // corpse at t=1 — the last *activity*. Neither the late crash event
        // nor anything after it may advance the quiescence clock, even though
        // the simulator clock itself runs on to the crash time.
        let g = Arc::new(generators::path(2).unwrap());
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: vec![
                    CrashAt {
                        node: NodeId(1),
                        at: 0,
                    },
                    CrashAt {
                        node: NodeId(0),
                        at: 100,
                    },
                ],
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert_eq!(sim.metrics().dropped_messages, 1);
        assert_eq!(sim.metrics().quiescence_time, 1, "drop at the corpse");
        assert_eq!(sim.now(), 100, "the clock still reaches the late crash");

        // Same principle for starts: a staggered start addressed to a node
        // that crashed at t=0 is a no-op and must not count as activity, so
        // across seeds the quiescence clock may end strictly before the
        // simulator clock (it would always equal it if corpse starts counted).
        let mut some_seed_diverges = false;
        for seed in 0..20 {
            let cfg = SimConfig {
                start: StartModel::Staggered {
                    max_offset: 300,
                    seed,
                },
                faults: FaultPlan {
                    crashes: vec![CrashAt {
                        node: NodeId(1),
                        at: 0,
                    }],
                    ..Default::default()
                },
                ..Default::default()
            };
            let mut sim = flood_sim(&g, cfg);
            sim.run().unwrap();
            assert!(sim.metrics().quiescence_time <= sim.now());
            some_seed_diverges |= sim.metrics().quiescence_time < sim.now();
        }
        assert!(
            some_seed_diverges,
            "for some seed the corpse's start is the last event"
        );
    }

    #[test]
    fn full_loss_drops_every_message() {
        let g = Arc::new(generators::complete(6).unwrap());
        let cfg = SimConfig {
            faults: FaultPlan {
                loss: 1.0,
                seed: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        // Node 0 floods its 5 neighbours; every send is lost, nobody answers.
        assert_eq!(sim.metrics().messages_total, 0);
        assert_eq!(sim.metrics().dropped_messages, 5);
        assert!(!sim.all_terminated(), "only node 0 ever saw the token");
    }

    #[test]
    fn lossy_runs_are_seed_deterministic() {
        let g = Arc::new(generators::gnp_connected(18, 0.3, 4).unwrap());
        let cfg = SimConfig {
            faults: FaultPlan {
                loss: 0.4,
                seed: 99,
                ..Default::default()
            },
            ..Default::default()
        };
        let mut a = flood_sim(&g, cfg.clone());
        let mut b = flood_sim(&g, cfg.clone());
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.metrics().dropped_messages > 0, "loss 0.4 must drop some");
        // A different loss seed changes which messages die.
        let mut c = flood_sim(
            &g,
            SimConfig {
                faults: FaultPlan {
                    loss: 0.4,
                    seed: 100,
                    ..Default::default()
                },
                ..cfg
            },
        );
        c.run().unwrap();
        assert_ne!(
            (a.metrics().messages_total, a.metrics().dropped_messages),
            (c.metrics().messages_total, c.metrics().dropped_messages),
        );
    }

    #[test]
    fn zero_loss_plan_is_bit_identical_to_no_plan() {
        let g = Arc::new(generators::gnp_connected(20, 0.25, 8).unwrap());
        let explicit = SimConfig {
            faults: FaultPlan {
                loss: 0.0,
                seed: 42, // a seed alone must not change anything
                ..Default::default()
            },
            ..Default::default()
        };
        let mut a = flood_sim(&g, SimConfig::default());
        let mut b = flood_sim(&g, explicit);
        a.run().unwrap();
        b.run().unwrap();
        assert_eq!(a.metrics(), b.metrics());
        assert_eq!(a.now(), b.now());
    }

    #[test]
    fn crashed_nodes_stop_processing_and_eat_messages() {
        // Crash node 0 (the initiator) at time 0: the crash event is scheduled
        // before the starts, so the flood never begins.
        let g = Arc::new(generators::path(4).unwrap());
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: vec![CrashAt {
                    node: NodeId(0),
                    at: 0,
                }],
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert_eq!(sim.metrics().messages_total, 0);
        assert_eq!(sim.metrics().crashed_nodes, 1);
        assert!(sim.crashed()[0]);
        assert!(!sim.node(NodeId(1)).seen, "the flood never started");

        // Crash node 2 mid-path instead: the flood dies at the crash site and
        // the message addressed to the corpse is counted as dropped.
        let cfg = SimConfig {
            faults: FaultPlan {
                crashes: vec![CrashAt {
                    node: NodeId(2),
                    at: 1,
                }],
                ..Default::default()
            },
            record_trace: true,
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert!(sim.node(NodeId(1)).seen);
        assert!(!sim.node(NodeId(3)).seen, "flood cannot pass the crash");
        assert!(sim.metrics().dropped_messages >= 1);
        assert!(!sim.all_live_terminated());
        let crashes = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Crash)
            .count();
        let drops = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Drop)
            .count();
        assert_eq!(crashes, 1);
        assert_eq!(drops as u64, sim.metrics().dropped_messages);
    }

    #[test]
    fn cut_links_stop_carrying_messages_in_both_directions() {
        // Cut the middle edge of a path at time 0: the flood reaches node 1
        // and no further.
        let g = Arc::new(generators::path(4).unwrap());
        let cfg = SimConfig {
            faults: FaultPlan {
                cuts: vec![CutAt {
                    a: NodeId(2),
                    b: NodeId(1),
                    at: 0,
                }],
                ..Default::default()
            },
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        assert!(sim.node(NodeId(1)).seen);
        assert!(!sim.node(NodeId(2)).seen);
        assert!(!sim.node(NodeId(3)).seen);
        assert!(sim.metrics().dropped_messages >= 1);
    }

    #[test]
    fn fault_plans_referencing_missing_nodes_or_edges_are_rejected() {
        let g = Arc::new(generators::path(4).unwrap());
        let bad_crash = SimConfig {
            faults: FaultPlan {
                crashes: vec![CrashAt {
                    node: NodeId(40),
                    at: 0,
                }],
                ..Default::default()
            },
            ..Default::default()
        };
        let err = Simulator::new(&g, bad_crash, |id, _| Flood {
            id,
            seen: false,
            max_hops_seen: 0,
        })
        .err()
        .expect("config must be rejected");
        assert!(matches!(err, SimError::InvalidConfig(_)), "{err}");
        let bad_cut = SimConfig {
            faults: FaultPlan {
                cuts: vec![CutAt {
                    a: NodeId(0),
                    b: NodeId(3),
                    at: 0,
                }],
                ..Default::default()
            },
            ..Default::default()
        };
        let err = Simulator::new(&g, bad_cut, |id, _| Flood {
            id,
            seen: false,
            max_hops_seen: 0,
        })
        .err()
        .expect("config must be rejected");
        assert!(err.to_string().contains("not an edge"), "{err}");
    }

    #[test]
    fn event_limit_is_enforced() {
        let g = Arc::new(generators::complete(10).unwrap());
        let cfg = SimConfig {
            max_events: 5,
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        let err = sim.run().unwrap_err();
        assert_eq!(err, SimError::EventLimitExceeded { limit: 5 });
    }

    #[test]
    fn causal_time_is_delay_independent() {
        let g = Arc::new(generators::path(8).unwrap());
        let slow = SimConfig {
            delay: DelayModel::PerLinkFixed {
                min: 1,
                max: 20,
                seed: 4,
            },
            ..Default::default()
        };
        let mut fast = flood_sim(&g, SimConfig::default());
        let mut slow_sim = flood_sim(&g, slow);
        fast.run().unwrap();
        slow_sim.run().unwrap();
        // The causal chain length is a property of the protocol, not the delays.
        assert_eq!(fast.metrics().causal_time, slow_sim.metrics().causal_time);
        // But the clock at quiescence is delay dependent (strictly larger here).
        assert!(slow_sim.metrics().quiescence_time >= fast.metrics().quiescence_time);
    }

    #[test]
    fn trace_records_sends_and_deliveries() {
        let g = Arc::new(generators::path(3).unwrap());
        let cfg = SimConfig {
            record_trace: true,
            ..Default::default()
        };
        let mut sim = flood_sim(&g, cfg);
        sim.run().unwrap();
        let sends = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Send)
            .count();
        let delivers = sim
            .trace()
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Deliver)
            .count();
        assert_eq!(sends, delivers);
        assert_eq!(delivers as u64, sim.metrics().messages_total);
    }

    #[test]
    #[should_panic(expected = "non-neighbour")]
    fn sending_to_a_non_neighbour_panics() {
        struct Bad;
        impl Protocol for Bad {
            type Message = Token;
            fn on_start(&mut self, ctx: &mut dyn Context<Token>) {
                ctx.send(NodeId(2), Token { hops: 0, n: 3 });
            }
            fn on_message(&mut self, _: NodeId, _: Token, _: &mut dyn Context<Token>) {}
        }
        let g = Arc::new(generators::path(3).unwrap());
        let mut sim = Simulator::new(&g, SimConfig::default(), |_, _| Bad).unwrap();
        // Node 0's only neighbour is node 1, so this panics during run().
        sim.run().unwrap();
    }

    #[test]
    fn fifo_is_preserved_per_link_even_with_random_delays() {
        // A protocol where node 0 sends a burst of numbered tokens to node 1,
        // and node 1 records the order of arrival.
        #[derive(Debug, Clone)]
        struct Numbered(u64);
        impl NetMessage for Numbered {
            fn kind(&self) -> &'static str {
                "Numbered"
            }
            fn encoded_bits(&self) -> usize {
                64
            }
        }
        enum Role {
            Sender,
            Receiver(Vec<u64>),
        }
        struct FifoProbe(Role);
        impl Protocol for FifoProbe {
            type Message = Numbered;
            fn on_start(&mut self, ctx: &mut dyn Context<Numbered>) {
                if let Role::Sender = self.0 {
                    if ctx.id() == NodeId(0) {
                        for i in 0..50 {
                            ctx.send(NodeId(1), Numbered(i));
                        }
                    }
                }
            }
            fn on_message(&mut self, _: NodeId, msg: Numbered, _: &mut dyn Context<Numbered>) {
                if let Role::Receiver(got) = &mut self.0 {
                    got.push(msg.0);
                }
            }
        }
        let g = Arc::new(generators::path(2).unwrap());
        let cfg = SimConfig {
            delay: DelayModel::UniformRandom {
                min: 1,
                max: 30,
                seed: 123,
            },
            ..Default::default()
        };
        let mut sim = Simulator::new(&g, cfg, |id, _| {
            if id == NodeId(0) {
                FifoProbe(Role::Sender)
            } else {
                FifoProbe(Role::Receiver(Vec::new()))
            }
        })
        .unwrap();
        sim.run().unwrap();
        let Role::Receiver(got) = &sim.node(NodeId(1)).0 else {
            panic!("node 1 is the receiver");
        };
        let sorted: Vec<u64> = (0..50).collect();
        assert_eq!(
            got, &sorted,
            "messages on one link must arrive in FIFO order"
        );
    }
}
