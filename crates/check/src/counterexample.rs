//! Serializable, replayable, minimizable counterexample schedules.
//!
//! When the checker finds a violated property it does not just say so — it
//! emits the complete recipe for reproducing it: the topology, the initial
//! spanning tree, the exact event schedule, and the violation it triggers.
//! [`Counterexample::replay`] re-drives a fresh [`ControlledNet`] through
//! the schedule deterministically; [`Counterexample::minimize`] greedily
//! deletes events while the violation still reproduces, which collapses the
//! incidental interleaving noise a DFS path accumulates into the handful of
//! deliveries that actually matter.

use crate::invariant::{InvariantSuite, Violation};
use mdst_core::MdstNode;
use mdst_graph::{GraphBuilder, NodeId, RootedTree};
use mdst_netsim::{ControlledEvent, ControlledNet, StartDiscipline};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A complete, self-contained reproduction recipe for one property
/// violation. Serializes to JSON and back losslessly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counterexample {
    /// Number of nodes in the topology.
    pub n: usize,
    /// Undirected edges of the topology.
    pub edges: Vec<(usize, usize)>,
    /// Root of the initial spanning tree.
    pub root: usize,
    /// Initial spanning tree as a parent vector (`None` at the root).
    pub initial_parents: Vec<Option<usize>>,
    /// Whether starts were explicit schedule events (lazy discipline).
    pub lazy_starts: bool,
    /// The event schedule that reaches the violating state.
    pub schedule: Vec<ControlledEvent>,
    /// The property that failed at the end of the schedule.
    pub violation: Violation,
    /// Whether the violation fired at a quiescent state (outcome property)
    /// rather than mid-flight (safety property).
    pub at_quiescence: bool,
}

/// Replay failed: an event in the schedule was not enabled, or the recorded
/// violation did not reproduce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplayError {
    /// The recipe itself is malformed (bad edges or parent vector).
    BadRecipe(String),
    /// A scheduled event was rejected by the net.
    NotEnabled(String),
    /// The schedule ran to completion without reproducing the violation.
    NoViolation,
    /// A different violation fired than the recorded one.
    DifferentViolation(Violation),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::BadRecipe(s) => write!(f, "malformed counterexample: {s}"),
            ReplayError::NotEnabled(s) => write!(f, "schedule not replayable: {s}"),
            ReplayError::NoViolation => write!(f, "schedule replayed without any violation"),
            ReplayError::DifferentViolation(v) => {
                write!(f, "schedule reproduced a different violation: {v}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl Counterexample {
    /// Builds the initial [`ControlledNet`] this recipe starts from.
    pub fn initial_net(&self) -> Result<ControlledNet<MdstNode>, ReplayError> {
        let bad = |e: &dyn fmt::Display| ReplayError::BadRecipe(e.to_string());
        let mut b = GraphBuilder::new(self.n);
        for &(u, v) in &self.edges {
            b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))
                .map_err(|e| bad(&e))?;
        }
        let graph = Arc::new(b.build());
        let parents = self
            .initial_parents
            .iter()
            .map(|p| p.map(NodeId::new))
            .collect::<Vec<_>>();
        let tree =
            RootedTree::from_parents(NodeId::new(self.root), parents).map_err(|e| bad(&e))?;
        tree.validate_against(&graph).map_err(|e| bad(&e))?;
        let nodes = MdstNode::from_tree(&tree);
        let discipline = if self.lazy_starts {
            StartDiscipline::Lazy
        } else {
            StartDiscipline::Eager
        };
        Ok(ControlledNet::new(&graph, discipline, |id, _| {
            nodes[id.index()].clone()
        }))
    }

    /// Replays the schedule against `suite` and checks that the recorded
    /// violation reproduces. Safety properties are evaluated after every
    /// event; if `at_quiescence` the quiescent property is evaluated once
    /// the schedule is exhausted. Returns the reproduced violation.
    pub fn replay(&self, suite: &dyn InvariantSuite) -> Result<Violation, ReplayError> {
        let mut net = self.initial_net()?;
        let graph = Arc::clone(net.graph());
        let faulty = self.schedule.iter().any(|e| {
            matches!(
                e,
                ControlledEvent::Crash { .. } | ControlledEvent::Drop { .. }
            )
        });
        if let Some(v) = suite.check_state(&graph, &net) {
            return self.confirm(v);
        }
        for &event in &self.schedule {
            net.apply(event)
                .map_err(|e| ReplayError::NotEnabled(e.to_string()))?;
            if let Some(v) = suite.check_state(&graph, &net) {
                return self.confirm(v);
            }
        }
        if self.at_quiescence {
            if !net.is_quiescent() {
                return Err(ReplayError::NotEnabled(
                    "schedule ends before quiescence but the violation is a quiescent property"
                        .to_string(),
                ));
            }
            if let Some(v) = suite.check_quiescent(&graph, &net, faulty) {
                return self.confirm(v);
            }
        }
        Err(ReplayError::NoViolation)
    }

    fn confirm(&self, v: Violation) -> Result<Violation, ReplayError> {
        if v.rule == self.violation.rule {
            Ok(v)
        } else {
            Err(ReplayError::DifferentViolation(v))
        }
    }

    /// Greedily minimizes the schedule: repeatedly try deleting each event
    /// and keep the deletion whenever the same violation rule still
    /// reproduces, until no single deletion survives. The result replays
    /// deterministically to the same violation and is usually a fraction of
    /// the DFS path's length.
    pub fn minimize(&self, suite: &dyn InvariantSuite) -> Counterexample {
        let mut best = self.clone();
        loop {
            let mut shrunk = false;
            let mut i = 0;
            while i < best.schedule.len() {
                let mut candidate = best.clone();
                candidate.schedule.remove(i);
                match candidate.replay(suite) {
                    Ok(v) => {
                        candidate.violation = v;
                        best = candidate;
                        shrunk = true;
                        // Do not advance: index i now names the next event.
                    }
                    Err(_) => i += 1,
                }
            }
            if !shrunk {
                return best;
            }
        }
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        self.to_value().to_json_pretty()
    }

    /// Parses a counterexample back from [`Counterexample::to_json`] output.
    pub fn from_json(json: &str) -> Result<Counterexample, String> {
        let value = serde::from_json_str(json).map_err(|e| e.to_string())?;
        Deserialize::from_value(&value).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::MdstInvariants;
    use mdst_graph::Graph;

    /// A deliberately wrong property: "no node ever has tree degree ≥ 3" —
    /// false on any star once the protocol settles (and initially).
    struct NoDegreeThree;

    impl InvariantSuite for NoDegreeThree {
        fn check_state(&self, _g: &Graph, net: &ControlledNet<MdstNode>) -> Option<Violation> {
            let mut deg = vec![0usize; net.nodes().len()];
            for (u, p) in net.nodes().iter().enumerate() {
                if let Some(parent) = p.parent() {
                    deg[u] += 1;
                    deg[parent.index()] += 1;
                }
            }
            deg.iter().position(|&d| d >= 3).map(|u| {
                Violation::new("bogus-degree-three", format!("v{u} has degree {}", deg[u]))
            })
        }

        fn check_quiescent(
            &self,
            _g: &Graph,
            _net: &ControlledNet<MdstNode>,
            _faulty: bool,
        ) -> Option<Violation> {
            None
        }
    }

    fn star4_counterexample(schedule: Vec<ControlledEvent>) -> Counterexample {
        Counterexample {
            n: 4,
            edges: vec![(0, 1), (0, 2), (0, 3)],
            root: 0,
            initial_parents: vec![None, Some(0), Some(0), Some(0)],
            lazy_starts: false,
            schedule,
            violation: Violation::new("bogus-degree-three", "v0 has degree 3"),
            at_quiescence: false,
        }
    }

    #[test]
    fn replay_reproduces_a_recorded_violation() {
        let cex = star4_counterexample(vec![]);
        let v = cex.replay(&NoDegreeThree).unwrap();
        assert_eq!(v.rule, "bogus-degree-three");
    }

    #[test]
    fn replay_rejects_a_non_enabled_schedule() {
        let mut cex = star4_counterexample(vec![ControlledEvent::Deliver {
            from: NodeId(1),
            to: NodeId(3),
        }]);
        cex.violation = Violation::new("anything", String::new());
        assert!(matches!(
            cex.replay(&MdstInvariants),
            Err(ReplayError::NotEnabled(_))
        ));
    }

    #[test]
    fn replay_flags_a_clean_run_as_no_violation() {
        // The path P2 under the real invariants violates nothing mid-flight.
        let cex = Counterexample {
            n: 2,
            edges: vec![(0, 1)],
            root: 0,
            initial_parents: vec![None, Some(0)],
            lazy_starts: false,
            schedule: vec![],
            violation: Violation::new("anything", String::new()),
            at_quiescence: false,
        };
        assert_eq!(cex.replay(&MdstInvariants), Err(ReplayError::NoViolation));
    }

    #[test]
    fn minimize_strips_irrelevant_events() {
        // The bogus violation already holds initially, so every scheduled
        // event is removable.
        let mut net = star4_counterexample(vec![]).initial_net().unwrap();
        let mut schedule = Vec::new();
        for _ in 0..5 {
            let Some(&ev) = net.enabled_events().first() else {
                break;
            };
            net.apply(ev).unwrap();
            schedule.push(ev);
        }
        assert!(!schedule.is_empty());
        let cex = star4_counterexample(schedule);
        let min = cex.minimize(&NoDegreeThree);
        assert!(min.schedule.is_empty());
        assert_eq!(
            min.replay(&NoDegreeThree).unwrap().rule,
            "bogus-degree-three"
        );
    }

    #[test]
    fn counterexamples_round_trip_through_json() {
        let cex = star4_counterexample(vec![
            ControlledEvent::Deliver {
                from: NodeId(0),
                to: NodeId(1),
            },
            ControlledEvent::Crash { node: NodeId(2) },
        ]);
        let json = cex.to_json();
        let back = Counterexample::from_json(&json).unwrap();
        assert_eq!(back, cex);
    }
}
