//! Batch verification: model-check whole families of topologies in one
//! call, producing one serializable report.
//!
//! [`sweep_connected`] is the headline claim of this crate: it verifies the
//! protocol on **every** connected topology up to a given size (one
//! representative per isomorphism class), so a passing sweep is an
//! exhaustiveness statement, not a sampling one. [`sweep_named`] runs the
//! same check over the repo's generator shapes at one size.

use crate::checker::{check, CheckConfig, CheckReport};
use crate::enumerate::{connected_graphs, named_suite};
use mdst_graph::{algorithms, Graph, NodeId};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// The verification result for one topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepEntry {
    /// Human-readable topology label (`"n4-#3"` for enumerated graphs,
    /// generator names like `"wheel"` for named sweeps).
    pub label: String,
    /// Number of nodes.
    pub n: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// The per-topology model-checking report.
    pub report: CheckReport,
}

/// The aggregate result of a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// One entry per topology checked, in sweep order.
    pub entries: Vec<SweepEntry>,
    /// Total distinct states explored across the sweep.
    pub total_states: usize,
    /// Whether every entry was both complete and violation-free.
    pub all_passed: bool,
    /// Whether every entry covered its whole reachable space.
    pub all_complete: bool,
}

impl SweepReport {
    fn from_entries(entries: Vec<SweepEntry>) -> SweepReport {
        let total_states = entries.iter().map(|e| e.report.stats.states_explored).sum();
        let all_passed = entries.iter().all(|e| e.report.passed());
        let all_complete = entries.iter().all(|e| e.report.complete);
        SweepReport {
            entries,
            total_states,
            all_passed,
            all_complete,
        }
    }

    /// The first violating entry, if any.
    pub fn first_violation(&self) -> Option<&SweepEntry> {
        self.entries.iter().find(|e| !e.report.passed())
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        use serde::Serialize as _;
        self.to_value().to_json_pretty()
    }
}

fn check_one(label: String, graph: Graph, config: &CheckConfig) -> SweepEntry {
    let graph = Arc::new(graph);
    // Seed with the degree-concentrating greedy tree: the worst initial
    // trees are what give the improvement protocol actual work to do.
    let tree =
        algorithms::greedy_high_degree_tree(&graph, NodeId(0)).expect("swept graphs are connected");
    let entry_report: CheckReport = check(&graph, &tree, config);
    SweepEntry {
        label,
        n: graph.node_count(),
        edges: graph.edge_count(),
        report: entry_report,
    }
}

/// Model-checks every connected topology with `min_n ..= max_n` vertices
/// (one per isomorphism class). `max_n` is capped at 6 by the enumeration.
pub fn sweep_connected(min_n: usize, max_n: usize, config: &CheckConfig) -> SweepReport {
    let mut entries = Vec::new();
    for n in min_n.max(1)..=max_n {
        for (i, graph) in connected_graphs(n).into_iter().enumerate() {
            entries.push(check_one(format!("n{n}-#{i}"), graph, config));
            if entries.last().is_some_and(|e| !e.report.passed()) {
                return SweepReport::from_entries(entries);
            }
        }
    }
    SweepReport::from_entries(entries)
}

/// Model-checks the named generator topologies of size `n`.
pub fn sweep_named(n: usize, config: &CheckConfig) -> SweepReport {
    let mut entries = Vec::new();
    for (name, graph) in named_suite(n) {
        entries.push(check_one(name, graph, config));
        if entries.last().is_some_and(|e| !e.report.passed()) {
            break;
        }
    }
    SweepReport::from_entries(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_full_n3_sweep_passes() {
        let report = sweep_connected(1, 3, &CheckConfig::default());
        assert_eq!(report.entries.len(), 1 + 1 + 2);
        assert!(report.all_passed);
        assert!(report.all_complete);
        assert!(report.first_violation().is_none());
        assert!(report.total_states >= report.entries.len());
    }

    #[test]
    fn sweep_reports_serialize() {
        let report = sweep_connected(2, 2, &CheckConfig::default());
        let json = report.to_json();
        assert!(json.contains("\"all_passed\": true") || json.contains("\"all_passed\":true"));
    }

    #[test]
    fn named_sweeps_cover_the_generator_shapes() {
        let report = sweep_named(4, &CheckConfig::default());
        let labels: Vec<&str> = report.entries.iter().map(|e| e.label.as_str()).collect();
        assert!(labels.contains(&"cycle"));
        assert!(labels.contains(&"complete"));
        assert!(
            report.all_passed,
            "violation: {:?}",
            report.first_violation().map(|e| &e.label)
        );
    }
}
