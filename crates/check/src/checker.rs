//! The exhaustive scheduler: DFS over every enabled-event choice.
//!
//! The checker treats the protocol as a transition system whose states are
//! [`ControlledNet`] snapshots and whose transitions are the enabled
//! [`ControlledEvent`]s. From a given initial tree it explores *every*
//! interleaving of message deliveries (and, under a fault budget, every
//! placement of crash-stop and single-message-loss faults), pruning
//! revisited states by their canonical 128-bit fingerprint. Because
//! asynchronous deliveries commute so often, the fingerprint prune is what
//! turns a factorially-branching schedule tree into a tractable state
//! graph.
//!
//! Safety properties run after every transition; outcome properties run at
//! quiescent states (no start or delivery enabled). Any violation aborts
//! the search and is packaged as a [`Counterexample`] carrying the exact
//! DFS path, then greedily minimized so the reported schedule contains only
//! the deliveries that matter.

use crate::counterexample::Counterexample;
use crate::invariant::{InvariantSuite, MdstInvariants, Violation};
use mdst_core::MdstNode;
use mdst_graph::{Graph, NodeId, RootedTree};
use mdst_netsim::{ControlledEvent, ControlledNet, StartDiscipline};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use std::sync::Arc;

/// Budgets and fault switches for one model-checking run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckConfig {
    /// Abort (incomplete) after this many distinct explored states.
    pub max_states: usize,
    /// Flag any schedule longer than this as a liveness violation — the
    /// protocol is supposed to quiesce within a bounded number of events.
    pub max_depth: usize,
    /// How many crash-stop faults the adversary may inject per schedule.
    pub max_crashes: usize,
    /// How many single-message losses the adversary may inject per schedule.
    pub max_losses: usize,
    /// Branch over start orderings too (explicit `Start` events) instead of
    /// starting every node eagerly. The MDegST automaton is start-order
    /// insensitive (only the root acts on start), so this defaults to off.
    pub lazy_starts: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_states: 2_000_000,
            max_depth: 10_000,
            max_crashes: 0,
            max_losses: 0,
            lazy_starts: false,
        }
    }
}

/// Exploration statistics of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CheckStats {
    /// Distinct states explored (after fingerprint dedup).
    pub states_explored: usize,
    /// Transitions that reached an already-visited state.
    pub revisits_pruned: usize,
    /// Distinct quiescent states reached.
    pub quiescent_states: usize,
    /// Length of the longest schedule explored.
    pub max_depth_seen: usize,
    /// Whether the state budget was exhausted (search incomplete).
    pub state_cap_hit: bool,
}

/// One distinct protocol outcome: the parent vector and termination status
/// at a quiescent state. The checker collects the *set* of these — for a
/// schedule-independent protocol the fault-free set has exactly one element.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QuiescentOutcome {
    /// Final parent pointer of every node (`None` at the root).
    pub parents: Vec<Option<usize>>,
    /// Which nodes had crash-stopped by quiescence.
    pub crashed: Vec<bool>,
    /// Whether every live node reported local termination.
    pub all_live_done: bool,
    /// Maximum degree of the final parent-edge forest.
    pub max_degree: usize,
}

/// The result of one model-checking run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CheckReport {
    /// Exploration statistics.
    pub stats: CheckStats,
    /// Every distinct quiescent outcome reached (sorted, deduplicated).
    pub outcomes: Vec<QuiescentOutcome>,
    /// The first property violation found, minimized — `None` if every
    /// explored state satisfied the suite.
    pub violation: Option<Counterexample>,
    /// Whether the whole reachable space was covered (no state-cap abort,
    /// no violation short-circuit).
    pub complete: bool,
}

impl CheckReport {
    /// Whether the run proved the property set over the explored space.
    pub fn passed(&self) -> bool {
        self.violation.is_none()
    }
}

struct Frame {
    net: ControlledNet<MdstNode>,
    /// Enabled protocol events plus budget-admitted fault events.
    options: Vec<ControlledEvent>,
    next: usize,
    crashes_used: usize,
    losses_used: usize,
}

struct Search<'a> {
    graph: Arc<Graph>,
    config: &'a CheckConfig,
    suite: &'a dyn InvariantSuite,
    recipe: Counterexample,
    visited: HashSet<(u128, usize, usize)>,
    stats: CheckStats,
    outcomes: BTreeSet<QuiescentOutcome>,
}

impl Search<'_> {
    fn options_for(
        &self,
        net: &ControlledNet<MdstNode>,
        crashes: usize,
        losses: usize,
    ) -> Vec<ControlledEvent> {
        let mut options = net.enabled_events();
        if crashes < self.config.max_crashes || losses < self.config.max_losses {
            for fault in net.fault_events() {
                match fault {
                    ControlledEvent::Crash { .. } if crashes < self.config.max_crashes => {
                        options.push(fault);
                    }
                    ControlledEvent::Drop { .. } if losses < self.config.max_losses => {
                        options.push(fault);
                    }
                    _ => {}
                }
            }
        }
        options
    }

    fn record_quiescent(&mut self, net: &ControlledNet<MdstNode>) {
        self.stats.quiescent_states += 1;
        let outcome = QuiescentOutcome {
            parents: net
                .nodes()
                .iter()
                .map(|p| p.parent().map(|v| v.index()))
                .collect(),
            crashed: net.crashed().to_vec(),
            all_live_done: net.all_live_terminated(),
            max_degree: {
                let parents: Vec<Option<NodeId>> = net.nodes().iter().map(|p| p.parent()).collect();
                let crashed = net.crashed();
                let mut deg = vec![0usize; parents.len()];
                for (u, p) in parents.iter().enumerate() {
                    if crashed[u] {
                        continue;
                    }
                    if let Some(v) = p {
                        if !crashed[v.index()] {
                            deg[u] += 1;
                            deg[v.index()] += 1;
                        }
                    }
                }
                deg.into_iter().max().unwrap_or(0)
            },
        };
        self.outcomes.insert(outcome);
    }

    fn counterexample(
        &self,
        schedule: &[ControlledEvent],
        violation: Violation,
        at_quiescence: bool,
    ) -> Counterexample {
        let mut cex = self.recipe.clone();
        cex.schedule = schedule.to_vec();
        cex.violation = violation;
        cex.at_quiescence = at_quiescence;
        cex
    }
}

/// Exhaustively model-checks the MDegST protocol on `graph` from the given
/// initial spanning tree, under the default [`MdstInvariants`] suite.
pub fn check(graph: &Arc<Graph>, initial: &RootedTree, config: &CheckConfig) -> CheckReport {
    check_with_suite(graph, initial, config, &MdstInvariants)
}

/// [`check`] with a caller-supplied property suite (the hook the
/// broken-invariant tests use).
pub fn check_with_suite(
    graph: &Arc<Graph>,
    initial: &RootedTree,
    config: &CheckConfig,
    suite: &dyn InvariantSuite,
) -> CheckReport {
    let nodes = MdstNode::from_tree(initial);
    let discipline = if config.lazy_starts {
        StartDiscipline::Lazy
    } else {
        StartDiscipline::Eager
    };
    let root_net = ControlledNet::new(graph, discipline, |id, _| nodes[id.index()].clone());
    let recipe = Counterexample {
        n: graph.node_count(),
        edges: graph.edges().map(|(u, v)| (u.index(), v.index())).collect(),
        root: initial.root().index(),
        initial_parents: (0..graph.node_count())
            .map(|u| initial.parent(NodeId::new(u)).map(|p| p.index()))
            .collect(),
        lazy_starts: config.lazy_starts,
        schedule: Vec::new(),
        violation: Violation::new("none", String::new()),
        at_quiescence: false,
    };

    let mut search = Search {
        graph: Arc::clone(graph),
        config,
        suite,
        recipe,
        visited: HashSet::new(),
        stats: CheckStats::default(),
        outcomes: BTreeSet::new(),
    };

    let finish = |search: Search<'_>, violation: Option<Counterexample>, complete: bool| {
        let minimized = violation.map(|cex| {
            if cex.at_quiescence && cex.violation.rule == "stalled" {
                // Liveness violations depend on the whole schedule; deleting
                // events cannot un-stall anything, so skip minimization.
                cex
            } else {
                cex.minimize(suite)
            }
        });
        CheckReport {
            stats: search.stats,
            outcomes: search.outcomes.into_iter().collect(),
            violation: minimized,
            complete,
        }
    };

    // The initial state itself must satisfy the suite.
    if let Some(v) = suite.check_state(&search.graph, &root_net) {
        let cex = search.counterexample(&[], v, false);
        return finish(search, Some(cex), false);
    }
    search.stats.states_explored = 1;
    search.visited.insert((root_net.fingerprint(), 0, 0));

    let mut schedule: Vec<ControlledEvent> = Vec::new();
    let mut stack: Vec<Frame> = Vec::new();

    if root_net.is_quiescent() {
        search.record_quiescent(&root_net);
        if let Some(v) = search
            .suite
            .check_quiescent(&search.graph, &root_net, false)
        {
            let cex = search.counterexample(&[], v, true);
            return finish(search, Some(cex), false);
        }
    } else {
        let options = search.options_for(&root_net, 0, 0);
        stack.push(Frame {
            net: root_net,
            options,
            next: 0,
            crashes_used: 0,
            losses_used: 0,
        });
    }

    while let Some(frame) = stack.last_mut() {
        if frame.next >= frame.options.len() {
            stack.pop();
            schedule.pop();
            continue;
        }
        let event = frame.options[frame.next];
        frame.next += 1;

        let mut net = frame.net.clone();
        let crashes_used =
            frame.crashes_used + usize::from(matches!(event, ControlledEvent::Crash { .. }));
        let losses_used =
            frame.losses_used + usize::from(matches!(event, ControlledEvent::Drop { .. }));
        net.apply(event)
            .expect("enumerated event is enabled by construction");
        schedule.push(event);
        search.stats.max_depth_seen = search.stats.max_depth_seen.max(schedule.len());

        if let Some(v) = search.suite.check_state(&search.graph, &net) {
            let cex = search.counterexample(&schedule, v, false);
            return finish(search, Some(cex), false);
        }

        if schedule.len() > search.config.max_depth {
            let v = Violation::new(
                "depth-budget",
                format!(
                    "no quiescence within {} events — livelock or runaway protocol",
                    search.config.max_depth
                ),
            );
            let cex = search.counterexample(&schedule, v, false);
            return finish(search, Some(cex), false);
        }

        if !search
            .visited
            .insert((net.fingerprint(), crashes_used, losses_used))
        {
            search.stats.revisits_pruned += 1;
            schedule.pop();
            continue;
        }
        search.stats.states_explored += 1;
        if search.stats.states_explored > search.config.max_states {
            search.stats.state_cap_hit = true;
            return finish(search, None, false);
        }

        if net.is_quiescent() {
            search.record_quiescent(&net);
            let faulty = crashes_used > 0 || losses_used > 0;
            if let Some(v) = search.suite.check_quiescent(&search.graph, &net, faulty) {
                let cex = search.counterexample(&schedule, v, true);
                return finish(search, Some(cex), false);
            }
            // No fault branching at quiescence: a fault with no messages in
            // flight cannot enable anything new.
            schedule.pop();
            continue;
        }

        let options = search.options_for(&net, crashes_used, losses_used);
        stack.push(Frame {
            net,
            options,
            next: 0,
            crashes_used,
            losses_used,
        });
    }

    finish(search, None, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};

    fn greedy_tree(graph: &Arc<Graph>) -> RootedTree {
        algorithms::greedy_high_degree_tree(graph, NodeId(0)).unwrap()
    }

    #[test]
    fn a_path_has_exactly_one_fault_free_outcome() {
        let graph = Arc::new(generators::path(3).unwrap());
        let tree = greedy_tree(&graph);
        let report = check(&graph, &tree, &CheckConfig::default());
        assert!(report.passed(), "violation: {:?}", report.violation);
        assert!(report.complete);
        assert_eq!(
            report.outcomes.len(),
            1,
            "fault-free outcome must be schedule-independent"
        );
        assert!(report.outcomes[0].all_live_done);
    }

    #[test]
    fn the_four_cycle_with_chord_passes_exhaustively() {
        let graph = Arc::new(
            mdst_graph::graph::graph_from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)])
                .unwrap(),
        );
        let tree = greedy_tree(&graph);
        let report = check(&graph, &tree, &CheckConfig::default());
        assert!(report.passed(), "violation: {:?}", report.violation);
        assert!(report.complete);
        assert_eq!(report.outcomes.len(), 1);
        let outcome = &report.outcomes[0];
        assert!(outcome.all_live_done);
        assert!(outcome.max_degree <= mdst_core::bounds::paper_degree_upper_bound(&graph));
    }

    #[test]
    fn fingerprint_pruning_actually_fires() {
        let graph = Arc::new(generators::complete(4).unwrap());
        let tree = greedy_tree(&graph);
        let report = check(&graph, &tree, &CheckConfig::default());
        assert!(report.passed());
        assert!(
            report.stats.revisits_pruned > 0,
            "commuting deliveries must collapse"
        );
        assert!(report.stats.states_explored > 1);
    }

    #[test]
    fn the_state_cap_marks_the_run_incomplete() {
        let graph = Arc::new(generators::complete(4).unwrap());
        let tree = greedy_tree(&graph);
        let config = CheckConfig {
            max_states: 10,
            ..CheckConfig::default()
        };
        let report = check(&graph, &tree, &config);
        assert!(!report.complete);
        assert!(report.stats.state_cap_hit);
        assert!(report.passed(), "a cap abort is not a violation");
    }

    #[test]
    fn crash_faults_branch_and_stay_safe() {
        let graph = Arc::new(generators::cycle(3).unwrap());
        let tree = greedy_tree(&graph);
        let config = CheckConfig {
            max_crashes: 1,
            ..CheckConfig::default()
        };
        let report = check(&graph, &tree, &config);
        assert!(report.passed(), "violation: {:?}", report.violation);
        assert!(report.complete);
        assert!(
            report.outcomes.iter().any(|o| o.crashed.iter().any(|&c| c)),
            "some quiescent outcome must include a crash"
        );
        assert!(
            report.outcomes.len() > 1,
            "crash placement must produce distinct outcomes"
        );
    }

    #[test]
    fn loss_faults_branch_and_stay_safe() {
        let graph = Arc::new(generators::path(3).unwrap());
        let tree = greedy_tree(&graph);
        let config = CheckConfig {
            max_losses: 1,
            ..CheckConfig::default()
        };
        let report = check(&graph, &tree, &config);
        assert!(report.passed(), "violation: {:?}", report.violation);
        assert!(report.complete);
    }

    #[test]
    fn lazy_starts_reach_the_same_fault_free_outcome() {
        let graph = Arc::new(generators::cycle(4).unwrap());
        let tree = greedy_tree(&graph);
        let eager = check(&graph, &tree, &CheckConfig::default());
        let lazy = check(
            &graph,
            &tree,
            &CheckConfig {
                lazy_starts: true,
                ..CheckConfig::default()
            },
        );
        assert!(eager.passed() && lazy.passed());
        assert_eq!(eager.outcomes, lazy.outcomes);
        assert!(lazy.stats.states_explored >= eager.stats.states_explored);
    }
}
