//! `check` — command-line front end of the `mdst-check` model checker.
//!
//! ```text
//! check sweep  [--min-n N] [--max-n N] [--named N] [--max-states N]
//!              [--max-depth N] [--crashes N] [--losses N] [--lazy-starts]
//!              [--json PATH]
//! check replay <counterexample.json>
//! ```
//!
//! `sweep` exhaustively verifies every connected topology in the size range
//! (or the named generator suite) and exits nonzero if any property is
//! violated or any run is incomplete. `replay` re-runs a recorded
//! counterexample and confirms the violation reproduces.

use mdst_check::{CheckConfig, Counterexample, MdstInvariants, SweepReport};
use std::process::ExitCode;

const USAGE: &str = "usage:
  check sweep  [--min-n N] [--max-n N] [--named N] [--max-states N]
               [--max-depth N] [--crashes N] [--losses N] [--lazy-starts]
               [--json PATH]
  check replay <counterexample.json>

sweep   exhaustively model-check every connected topology with min-n..=max-n
        vertices (default 2..=5, one representative per isomorphism class),
        or the named generator suite of size N. Exits 1 on violation or
        incomplete coverage.
replay  re-run a recorded counterexample schedule and confirm the recorded
        violation reproduces. Exits 1 if it does (the bug is real), 0 never
        (a counterexample that fails to reproduce is itself an error, 2).";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn parse_usize(flag: &str, value: Option<&String>) -> Result<usize, String> {
    let raw = value.ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse::<usize>()
        .map_err(|_| format!("{flag} expects an unsigned integer, got `{raw}`"))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args.first().map(String::as_str) {
        Some("sweep") => run_sweep(&args[1..]),
        Some("replay") => run_replay(&args[1..]),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        Some(other) => Err(format!("unknown subcommand `{other}`")),
        None => Err("missing subcommand".to_string()),
    }
}

struct SweepArgs {
    min_n: usize,
    max_n: usize,
    named: Option<usize>,
    config: CheckConfig,
    json: Option<String>,
}

fn parse_sweep_args(args: &[String]) -> Result<SweepArgs, String> {
    let mut out = SweepArgs {
        min_n: 2,
        max_n: 5,
        named: None,
        config: CheckConfig::default(),
        json: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--min-n" => out.min_n = parse_usize(flag, it.next())?,
            "--max-n" => out.max_n = parse_usize(flag, it.next())?,
            "--named" => out.named = Some(parse_usize(flag, it.next())?),
            "--max-states" => out.config.max_states = parse_usize(flag, it.next())?,
            "--max-depth" => out.config.max_depth = parse_usize(flag, it.next())?,
            "--crashes" => out.config.max_crashes = parse_usize(flag, it.next())?,
            "--losses" => out.config.max_losses = parse_usize(flag, it.next())?,
            "--lazy-starts" => out.config.lazy_starts = true,
            "--json" => {
                out.json = Some(
                    it.next()
                        .ok_or_else(|| "--json needs a path".to_string())?
                        .clone(),
                )
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if out.named.is_none() && out.max_n > 6 {
        return Err("--max-n is capped at 6 (exhaustive enumeration)".to_string());
    }
    Ok(out)
}

fn run_sweep(args: &[String]) -> Result<ExitCode, String> {
    let parsed = parse_sweep_args(args)?;
    let report: SweepReport = match parsed.named {
        Some(n) => mdst_check::sweep_named(n, &parsed.config),
        None => mdst_check::sweep_connected(parsed.min_n, parsed.max_n, &parsed.config),
    };
    for entry in &report.entries {
        let status = if !entry.report.passed() {
            "VIOLATION"
        } else if !entry.report.complete {
            "INCOMPLETE"
        } else {
            "ok"
        };
        println!(
            "{:<12} n={} m={} states={} pruned={} quiescent={} depth={} {}",
            entry.label,
            entry.n,
            entry.edges,
            entry.report.stats.states_explored,
            entry.report.stats.revisits_pruned,
            entry.report.stats.quiescent_states,
            entry.report.stats.max_depth_seen,
            status,
        );
    }
    println!(
        "swept {} topologies, {} distinct states total",
        report.entries.len(),
        report.total_states
    );
    if let Some(path) = &parsed.json {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(bad) = report.first_violation() {
        let cex = bad
            .report
            .violation
            .as_ref()
            .expect("a failed entry carries its counterexample");
        eprintln!(
            "\nviolation on {}: {}\nminimized schedule ({} events):",
            bad.label,
            cex.violation,
            cex.schedule.len()
        );
        for event in &cex.schedule {
            eprintln!("  {event}");
        }
        eprintln!("\ncounterexample JSON:\n{}", cex.to_json());
        return Ok(ExitCode::FAILURE);
    }
    if !report.all_complete {
        eprintln!("\nstate budget exhausted before full coverage — raise --max-states");
        return Ok(ExitCode::FAILURE);
    }
    println!("all topologies verified");
    Ok(ExitCode::SUCCESS)
}

fn run_replay(args: &[String]) -> Result<ExitCode, String> {
    let [path] = args else {
        return Err("replay takes exactly one counterexample file".to_string());
    };
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let cex = Counterexample::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    match cex.replay(&MdstInvariants) {
        Ok(violation) => {
            println!(
                "violation reproduces after {} events: {violation}",
                cex.schedule.len()
            );
            Ok(ExitCode::FAILURE)
        }
        Err(err) => Err(format!("replay failed: {err}")),
    }
}
