//! The properties the checker asserts, and the hook for swapping them out.
//!
//! Safety properties (checked after **every** event) delegate to
//! [`mdst_core::check_safety_invariants`]: parent pointers form a forest of
//! graph edges, at most one root, at most one coordinator, per-round
//! fragment agreement. Quiescent properties (checked when no protocol event
//! is enabled) assert the paper's outcome guarantees: every live node has
//! locally terminated, the final parent edges span the survivor component,
//! and the tree degree respects `2·OPT + ⌈log₂ n⌉`
//! ([`mdst_core::bounds::paper_degree_upper_bound`]).
//!
//! The [`InvariantSuite`] trait exists so tests can inject a deliberately
//! wrong property and watch the checker produce — and minimize — a
//! counterexample for it.

use mdst_core::{bounds, check_safety_invariants, survivor_report, MdstNode};
use mdst_graph::{Graph, NodeId};
use mdst_netsim::ControlledNet;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A property violation, in serializable form. `rule` is a stable
/// kebab-case identifier (suitable for comparing a replayed violation
/// against the recorded one); `detail` is human-readable context.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Violation {
    /// Stable kebab-case rule identifier (e.g. `"parent-cycle"`).
    pub rule: String,
    /// Human-readable description of what failed and where.
    pub detail: String,
}

impl Violation {
    /// Builds a violation from a rule label and rendered detail.
    pub fn new(rule: impl Into<String>, detail: impl Into<String>) -> Self {
        Violation {
            rule: rule.into(),
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

/// The property set a model-checking run enforces.
///
/// `check_state` runs after every applied event; `check_quiescent` runs
/// additionally at states with no enabled protocol event. `faulty` tells
/// the quiescent check whether the path to this state included injected
/// faults — outcome guarantees are only promised fault-free, so suites
/// typically relax quiescent checks on faulty paths.
pub trait InvariantSuite {
    /// Safety check of an arbitrary reachable state.
    fn check_state(&self, graph: &Graph, net: &ControlledNet<MdstNode>) -> Option<Violation>;

    /// Outcome check of a quiescent state.
    fn check_quiescent(
        &self,
        graph: &Graph,
        net: &ControlledNet<MdstNode>,
        faulty: bool,
    ) -> Option<Violation>;
}

/// The paper's invariants for the MDegST protocol — the default suite.
#[derive(Debug, Clone, Copy, Default)]
pub struct MdstInvariants;

fn parents_of(net: &ControlledNet<MdstNode>) -> Vec<Option<NodeId>> {
    net.nodes().iter().map(|p| p.parent()).collect()
}

impl InvariantSuite for MdstInvariants {
    fn check_state(&self, graph: &Graph, net: &ControlledNet<MdstNode>) -> Option<Violation> {
        let snapshots: Vec<_> = net.nodes().iter().map(MdstNode::snapshot).collect();
        check_safety_invariants(graph, &snapshots)
            .err()
            .map(|v| Violation::new(v.rule(), v.to_string()))
    }

    fn check_quiescent(
        &self,
        graph: &Graph,
        net: &ControlledNet<MdstNode>,
        faulty: bool,
    ) -> Option<Violation> {
        if faulty {
            // Crash-stop and message loss legitimately strand the protocol
            // (e.g. a lost Child leaves an exchange half-installed), so only
            // the safety properties — already checked — are promised.
            return None;
        }
        if let Some(stalled) = net.nodes().iter().position(|p| !p.is_done()) {
            return Some(Violation::new(
                "stalled",
                format!(
                    "quiescent without faults but {} has not terminated",
                    NodeId::new(stalled)
                ),
            ));
        }
        let crashed = vec![false; graph.node_count()];
        let report = survivor_report(graph, &parents_of(net), &crashed);
        if !report.spans_component {
            return Some(Violation::new(
                "not-spanning",
                format!(
                    "final parent edges do not span the graph ({} tree edges on {} nodes)",
                    report.tree_edges,
                    graph.node_count()
                ),
            ));
        }
        let bound = bounds::paper_degree_upper_bound(graph);
        if report.max_degree > bound {
            return Some(Violation::new(
                "degree-bound",
                format!(
                    "final tree degree {} exceeds the paper bound 2·OPT + ⌈log₂ n⌉ = {}",
                    report.max_degree, bound
                ),
            ));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};
    use mdst_netsim::{ControlledNet, StartDiscipline};
    use std::sync::Arc;

    fn quiesce(net: &mut ControlledNet<MdstNode>) {
        let mut budget = 100_000;
        while let Some(&ev) = net.enabled_events().first() {
            net.apply(ev).unwrap();
            budget -= 1;
            assert!(budget > 0, "protocol failed to quiesce");
        }
    }

    fn net_on(graph: &Arc<Graph>) -> ControlledNet<MdstNode> {
        let tree = algorithms::greedy_high_degree_tree(graph, NodeId(0)).unwrap();
        let nodes = MdstNode::from_tree(&tree);
        ControlledNet::new(graph, StartDiscipline::Eager, |id, _| {
            nodes[id.index()].clone()
        })
    }

    #[test]
    fn the_default_suite_accepts_a_clean_run() {
        let graph = Arc::new(generators::wheel(5).unwrap());
        let mut net = net_on(&graph);
        let suite = MdstInvariants;
        assert_eq!(suite.check_state(&graph, &net), None);
        quiesce(&mut net);
        assert_eq!(suite.check_state(&graph, &net), None);
        assert_eq!(suite.check_quiescent(&graph, &net, false), None);
    }

    #[test]
    fn a_stalled_fault_free_state_is_flagged() {
        let graph = Arc::new(generators::cycle(4).unwrap());
        let net = net_on(&graph);
        // The initial state has work in flight; pretending it is quiescent
        // must trip the stalled check because nobody has terminated yet.
        let suite = MdstInvariants;
        let v = suite.check_quiescent(&graph, &net, false).unwrap();
        assert_eq!(v.rule, "stalled");
        // The same state under a faulty history is tolerated.
        assert_eq!(suite.check_quiescent(&graph, &net, true), None);
    }

    #[test]
    fn violations_render_and_round_trip() {
        let v = Violation::new("degree-bound", "degree 4 exceeds bound 3");
        assert_eq!(v.to_string(), "[degree-bound] degree 4 exceeds bound 3");
        let json = serde::Serialize::to_value(&v).to_json();
        let back: Violation =
            serde::Deserialize::from_value(&serde::from_json_str(&json).unwrap()).unwrap();
        assert_eq!(back, v);
    }
}
