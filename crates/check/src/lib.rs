//! # mdst-check
//!
//! An exhaustive small-state model checker for the distributed MDegST
//! protocol of Blin & Butelle. Where the `mdst-netsim` simulator *samples*
//! one schedule per seed, this crate *proves* properties over **every**
//! schedule: it drives the unmodified [`mdst_core::MdstNode`] automaton
//! through each reachable interleaving of message deliveries on small
//! topologies (all connected graphs on up to 6 vertices, enumerated up to
//! isomorphism), optionally branching over crash-stop and message-loss
//! faults under an adversary budget.
//!
//! The pieces:
//!
//! * [`enumerate`] — every connected ≤6-vertex topology up to isomorphism
//!   (OEIS A001349: 1, 1, 2, 6, 21, 112), plus the repo's named generator
//!   shapes at a given size.
//! * [`invariant`] — the property suite: safety after every event (forest
//!   structure, single root, single coordinator, fragment agreement),
//!   outcome at quiescence (termination, spanning, the paper's
//!   `2·OPT + ⌈log₂ n⌉` degree bound). Pluggable via
//!   [`invariant::InvariantSuite`].
//! * [`checker`] — the DFS over enabled-event choices with canonical
//!   128-bit state fingerprints pruning revisits, budgets on states and
//!   depth, and fault branching.
//! * [`counterexample`] — serializable, replayable, greedily minimized
//!   violation schedules.
//!
//! The `check` binary (and `scenario check`) runs sweeps from the command
//! line with JSON reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod counterexample;
pub mod enumerate;
pub mod invariant;
pub mod sweep;

pub use checker::{
    check, check_with_suite, CheckConfig, CheckReport, CheckStats, QuiescentOutcome,
};
pub use counterexample::{Counterexample, ReplayError};
pub use enumerate::{connected_graphs, named_suite};
pub use invariant::{InvariantSuite, MdstInvariants, Violation};
pub use sweep::{sweep_connected, sweep_named, SweepEntry, SweepReport};
