//! Exhaustive enumeration of the small topologies the checker sweeps.
//!
//! For n ≤ 6 every connected graph can be enumerated outright: there are
//! `C(n, 2)` potential edges, so at most 2^15 labelled graphs, and the
//! isomorphism classes are found by canonicalising each edge set under all
//! `n!` vertex permutations. The classical counts (OEIS A001349) are
//! 1, 1, 2, 6, 21, 112 connected graphs on n = 1..6 vertices — small enough
//! that "every topology" is a literal claim, not a sampling one.
//!
//! [`named_suite`] complements the enumeration with the repo's own generator
//! topologies at a given size, so sweeps can also exercise exactly the shapes
//! used elsewhere in the experiments (cycles, stars, wheels, complete
//! graphs, …).

use mdst_graph::{generators, Graph, GraphBuilder, NodeId};

/// All `C(n, 2)` vertex pairs in lexicographic order — the bit positions of
/// the edge-mask encoding.
fn edge_slots(n: usize) -> Vec<(usize, usize)> {
    let mut slots = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n {
        for v in (u + 1)..n {
            slots.push((u, v));
        }
    }
    slots
}

/// Whether the labelled graph encoded by `mask` over `slots` is connected on
/// `n` vertices (an isolated vertex counts as disconnected for n > 1).
fn mask_is_connected(n: usize, slots: &[(usize, usize)], mask: u32) -> bool {
    if n <= 1 {
        return true;
    }
    let mut adj = vec![Vec::new(); n];
    for (bit, &(u, v)) in slots.iter().enumerate() {
        if mask & (1 << bit) != 0 {
            adj[u].push(v);
            adj[v].push(u);
        }
    }
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1;
    while let Some(u) = stack.pop() {
        for &v in &adj[u] {
            if !seen[v] {
                seen[v] = true;
                count += 1;
                stack.push(v);
            }
        }
    }
    count == n
}

/// Generates every permutation of `0..n` (Heap's algorithm).
fn permutations(n: usize) -> Vec<Vec<usize>> {
    let mut items: Vec<usize> = (0..n).collect();
    let mut out = Vec::new();
    fn heap(k: usize, items: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if k <= 1 {
            out.push(items.clone());
            return;
        }
        for i in 0..k {
            heap(k - 1, items, out);
            if k.is_multiple_of(2) {
                items.swap(i, k - 1);
            } else {
                items.swap(0, k - 1);
            }
        }
    }
    heap(n, &mut items, &mut out);
    out
}

/// The minimum edge-mask over all vertex relabellings — a canonical
/// representative of the isomorphism class.
fn canonical_mask(
    slots: &[(usize, usize)],
    slot_index: &[Vec<usize>],
    mask: u32,
    perms: &[Vec<usize>],
) -> u32 {
    let mut best = u32::MAX;
    for perm in perms {
        let mut relabelled = 0u32;
        for (bit, &(u, v)) in slots.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                let (a, b) = (perm[u], perm[v]);
                let (a, b) = if a < b { (a, b) } else { (b, a) };
                relabelled |= 1 << slot_index[a][b];
            }
        }
        best = best.min(relabelled);
    }
    best
}

/// Every connected graph on exactly `n` vertices, one representative per
/// isomorphism class, in a deterministic order (ascending canonical edge
/// mask — sparsest first). Supports `1 ≤ n ≤ 6`.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 6` (the edge mask is 32 bits and the
/// permutation sweep is factorial; beyond 6 vertices exhaustive-by-
/// construction stops being honest).
pub fn connected_graphs(n: usize) -> Vec<Graph> {
    assert!(
        (1..=6).contains(&n),
        "exhaustive enumeration supports 1..=6 vertices"
    );
    let slots = edge_slots(n);
    let mut slot_index = vec![vec![0usize; n]; n];
    for (bit, &(u, v)) in slots.iter().enumerate() {
        slot_index[u][v] = bit;
    }
    let perms = permutations(n);
    let mut canon: Vec<u32> = Vec::new();
    for mask in 0..(1u32 << slots.len()) {
        if !mask_is_connected(n, &slots, mask) {
            continue;
        }
        let c = canonical_mask(&slots, &slot_index, mask, &perms);
        if c == mask {
            canon.push(mask);
        }
    }
    canon.sort_unstable();
    canon
        .into_iter()
        .map(|mask| {
            let mut b = GraphBuilder::new(n);
            for (bit, &(u, v)) in slots.iter().enumerate() {
                if mask & (1 << bit) != 0 {
                    b.add_edge(NodeId::new(u), NodeId::new(v))
                        .expect("enumerated edge is simple");
                }
            }
            b.build()
        })
        .collect()
}

/// The generator-built topologies of size `n` the rest of the repo
/// experiments on, as `(name, graph)` pairs. Shapes that need more vertices
/// than `n` provides are skipped.
pub fn named_suite(n: usize) -> Vec<(String, Graph)> {
    let mut suite: Vec<(String, Graph)> = Vec::new();
    let mut push = |name: &str, g: Result<Graph, mdst_graph::GraphError>| {
        if let Ok(g) = g {
            suite.push((name.to_string(), g));
        }
    };
    push("path", generators::path(n));
    if n >= 3 {
        push("cycle", generators::cycle(n));
        push("star", generators::star(n));
    }
    if n >= 4 {
        push("wheel", generators::wheel(n));
    }
    if n >= 2 {
        push("complete", generators::complete(n));
    }
    if n >= 4 && n.is_multiple_of(2) {
        push(
            "complete-bipartite",
            generators::complete_bipartite(n / 2, n / 2),
        );
    }
    suite
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_graph_counts_match_oeis_a001349() {
        // 1, 1, 2, 6, 21, 112 connected graphs on 1..=6 vertices.
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(connected_graphs(2).len(), 1);
        assert_eq!(connected_graphs(3).len(), 2);
        assert_eq!(connected_graphs(4).len(), 6);
        assert_eq!(connected_graphs(5).len(), 21);
        assert_eq!(connected_graphs(6).len(), 112);
    }

    #[test]
    fn enumerated_graphs_are_connected_and_span_the_size() {
        for g in connected_graphs(5) {
            assert_eq!(g.node_count(), 5);
            assert!(mdst_graph::algorithms::is_connected(&g));
        }
    }

    #[test]
    fn enumeration_brackets_tree_and_clique() {
        // The sparsest class on 4 vertices has 3 edges (a tree); the densest
        // is K4 with 6.
        let graphs = connected_graphs(4);
        assert_eq!(graphs.first().unwrap().edge_count(), 3);
        assert_eq!(graphs.last().unwrap().edge_count(), 6);
    }

    #[test]
    fn named_suite_scales_with_n() {
        let names: Vec<String> = named_suite(4).into_iter().map(|(n, _)| n).collect();
        assert!(names.contains(&"cycle".to_string()));
        assert!(names.contains(&"wheel".to_string()));
        assert!(names.contains(&"complete-bipartite".to_string()));
        assert!(!named_suite(2).iter().any(|(n, _)| n == "star"));
        for (_, g) in named_suite(5) {
            assert_eq!(g.node_count(), 5);
        }
    }
}
