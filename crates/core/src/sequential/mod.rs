//! Centralized baselines and oracles.
//!
//! Three sequential algorithms accompany the distributed protocol:
//!
//! * [`local_search::paper_local_search`] — a centralized mirror of the
//!   paper's improvement rule (fragments around the minimum-identity
//!   maximum-degree node, endpoints of degree at most `k − 2`, best edge by
//!   smallest maximum endpoint degree). Because the distributed protocol's
//!   decisions depend only on the tree structure and deterministic tie
//!   breaking, the mirror must produce *the same sequence of trees*; the
//!   cross-validation tests rely on that.
//! * [`furer_raghavachari::furer_raghavachari`] — the sequential heuristic the
//!   paper distributes (\[3\] in its bibliography), in a local-search
//!   formulation that can also improve blocking degree-(k−1) vertices.
//! * [`exact::exact_min_degree`] — branch-and-bound optimum for small
//!   instances, the ground truth of the approximation-quality experiment (E5).

pub mod exact;
pub mod furer_raghavachari;
pub mod local_search;

pub use exact::{exact_min_degree, spanning_tree_with_max_degree};
pub use furer_raghavachari::furer_raghavachari;
pub use local_search::{paper_local_search, LocalSearchOutcome};
