//! Sequential Fürer–Raghavachari-style local search.
//!
//! The heuristic the paper distributes: start from any spanning tree and, as
//! long as some maximum-degree vertex lies on the tree cycle of a non-tree
//! edge whose endpoints both have degree at most `k − 2`, swap that edge in
//! and a cycle edge incident to the high-degree vertex out. When no such swap
//! exists, optionally try the same move on degree-(k−1) vertices (the blocking
//! set `B` of Theorem 1) with endpoints of degree at most `k − 3`; this
//! unblocks situations the paper's strict rule leaves behind and is the
//! configuration compared in ablation A3.
//!
//! Both variants strictly decrease the potential `Σ_v 3^{deg(v)}` at every
//! swap, so they terminate.

use super::local_search::LocalSearchOutcome;
use mdst_graph::{Graph, GraphError, NodeId, RootedTree};

/// Runs the Fürer–Raghavachari-style local search.
///
/// With `improve_blocking = false` only maximum-degree vertices are improved
/// (the paper's rule generalised from one target vertex to all of them); with
/// `improve_blocking = true` degree-(k−1) vertices are also improved when that
/// is possible without creating new degree-(k−1) vertices, which empirically
/// brings the result to within one of the optimum on every tested instance.
pub fn furer_raghavachari(
    graph: &Graph,
    initial: &RootedTree,
    improve_blocking: bool,
) -> Result<LocalSearchOutcome, GraphError> {
    initial.validate_against(graph)?;
    let mut tree = initial.clone();
    let mut rounds = 0usize;
    let mut improvements = 0usize;
    loop {
        rounds += 1;
        let k = tree.max_degree();
        if k <= 2 {
            break;
        }
        if let Some((u, v, w)) = find_swap(graph, &tree, k) {
            apply_swap(&mut tree, u, v, w)?;
            improvements += 1;
            continue;
        }
        if improve_blocking && k >= 4 {
            if let Some((u, v, w)) = find_swap(graph, &tree, k - 1) {
                apply_swap(&mut tree, u, v, w)?;
                improvements += 1;
                continue;
            }
        }
        break;
    }
    Ok(LocalSearchOutcome {
        tree,
        rounds,
        improvements,
    })
}

/// Finds a non-tree edge `(u, v)` with both endpoint degrees at most `d − 2`
/// whose tree path contains a vertex `w` of degree exactly `d`. Returns the
/// lexicographically smallest such `(u, v)` (by the same score the distributed
/// protocol uses) for determinism.
fn find_swap(graph: &Graph, tree: &RootedTree, d: usize) -> Option<(NodeId, NodeId, NodeId)> {
    type ScoredSwap = ((usize, NodeId, NodeId), NodeId, NodeId, NodeId);
    let mut best: Option<ScoredSwap> = None;
    for (a, b) in graph.edges() {
        if tree.has_edge(a, b) {
            continue;
        }
        let (da, db) = (tree.degree(a), tree.degree(b));
        if da + 2 > d || db + 2 > d {
            continue;
        }
        let path = tree.path_between(a, b);
        let Some(&w) = path.iter().find(|&&x| tree.degree(x) == d) else {
            continue;
        };
        let (u, v) = if a < b { (a, b) } else { (b, a) };
        let score = (da.max(db), u, v);
        if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
            best = Some((score, u, v, w));
        }
    }
    best.map(|(_, u, v, w)| (u, v, w))
}

/// Applies the swap: adds `(u, v)` and removes the tree-path edge between `w`
/// and its path neighbour on the `u` side.
fn apply_swap(tree: &mut RootedTree, u: NodeId, v: NodeId, w: NodeId) -> Result<(), GraphError> {
    let path = tree.path_between(u, v);
    let pos = path
        .iter()
        .position(|&x| x == w)
        .expect("w lies on the tree path between u and v");
    debug_assert!(pos > 0 && pos + 1 < path.len(), "w is interior to the path");
    let toward_u = path[pos - 1];
    // Remove the edge (w, toward_u); the side containing `toward_u` also
    // contains `u`, so the replacement edge (u, v) re-crosses the cut.
    let (cut_parent, cut_child) = if tree.parent(toward_u) == Some(w) {
        (w, toward_u)
    } else {
        (toward_u, w)
    };
    tree.exchange(cut_parent, cut_child, u, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequential::exact::exact_min_degree;
    use mdst_graph::{algorithms, generators};

    #[test]
    fn within_one_of_optimal_on_hamiltonian_instances() {
        // The graph has a Hamiltonian path (Δ* = 2); the heuristic guarantee is
        // Δ* + 1, and it must get there all the way from the degree-8 star.
        let g = generators::star_with_leaf_edges(9).unwrap();
        let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert_eq!(initial.max_degree(), 8);
        let out = furer_raghavachari(&g, &initial, true).unwrap();
        assert!(
            out.tree.max_degree() <= 3,
            "got degree {}",
            out.tree.max_degree()
        );
        assert!(out.tree.is_spanning_tree_of(&g));
        assert!(out.improvements >= 5);
    }

    #[test]
    fn blocking_improvements_never_hurt() {
        for seed in 0..6u64 {
            let g = generators::gnp_connected(24, 0.12, seed).unwrap();
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let strict = furer_raghavachari(&g, &initial, false).unwrap();
            let blocking = furer_raghavachari(&g, &initial, true).unwrap();
            assert!(
                blocking.tree.max_degree() <= strict.tree.max_degree(),
                "seed {seed}"
            );
            assert!(blocking.tree.is_spanning_tree_of(&g), "seed {seed}");
        }
    }

    #[test]
    fn within_one_of_the_optimum_on_small_random_graphs() {
        for seed in 0..8u64 {
            let g = generators::gnp_connected(12, 0.25, seed).unwrap();
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let out = furer_raghavachari(&g, &initial, true).unwrap();
            let optimum = exact_min_degree(&g).unwrap();
            assert!(out.tree.max_degree() >= optimum, "seed {seed}");
            assert!(
                out.tree.max_degree() <= optimum + 1,
                "seed {seed}: got {} with optimum {optimum}",
                out.tree.max_degree()
            );
        }
    }

    #[test]
    fn respects_forced_high_degree_optima() {
        // Every spanning tree of the broom must keep the centre at degree 5.
        let g = generators::high_optimum(5, 3).unwrap();
        let initial = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let out = furer_raghavachari(&g, &initial, true).unwrap();
        assert_eq!(out.tree.max_degree(), 5);
        assert_eq!(out.improvements, 0);
    }
}
