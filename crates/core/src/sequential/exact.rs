//! Exact minimum-degree spanning tree for small instances.
//!
//! The problem is NP-hard (it generalises the Hamiltonian path problem), so
//! the exact solver is only meant for the small graphs of the
//! approximation-quality experiment (E5) and the property tests. It answers
//! the decision problem "does `G` have a spanning tree of maximum degree at
//! most `d`?" by backtracking over the edge list with union–find pruning, and
//! finds `Δ*` by increasing `d` from a combinatorial lower bound.

use crate::bounds::degree_lower_bound;
use mdst_graph::algorithms::{is_connected, DisjointSet};
use mdst_graph::{Graph, GraphError, NodeId, RootedTree};

/// Finds a spanning tree of `graph` whose maximum degree is at most `d`, if
/// one exists.
pub fn spanning_tree_with_max_degree(graph: &Graph, d: usize) -> Option<RootedTree> {
    let n = graph.node_count();
    if n == 0 {
        return None;
    }
    if n == 1 {
        return RootedTree::from_parents(NodeId(0), vec![None]).ok();
    }
    if d == 0 || !is_connected(graph) {
        return None;
    }
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let mut chosen: Vec<(NodeId, NodeId)> = Vec::with_capacity(n - 1);
    let mut degrees = vec![0usize; n];
    let dsu = DisjointSet::new(n);
    if search(&edges, 0, n, d, &mut chosen, &mut degrees, dsu) {
        RootedTree::from_edges(n, NodeId(0), &chosen).ok()
    } else {
        None
    }
}

/// Backtracking over the edge list: at index `i`, either take the edge (if it
/// joins two components and respects the degree cap) or skip it. Prunes when
/// the remaining edges cannot connect the remaining components.
fn search(
    edges: &[(NodeId, NodeId)],
    index: usize,
    n: usize,
    cap: usize,
    chosen: &mut Vec<(NodeId, NodeId)>,
    degrees: &mut Vec<usize>,
    dsu: DisjointSet,
) -> bool {
    if chosen.len() == n - 1 {
        return true;
    }
    let needed = n - 1 - chosen.len();
    if edges.len() - index < needed {
        return false;
    }
    let (u, v) = edges[index];
    // Branch 1: take the edge if it is useful and legal.
    {
        let mut dsu_taken = dsu.clone();
        if degrees[u.index()] < cap
            && degrees[v.index()] < cap
            && dsu_taken.union(u.index(), v.index())
        {
            chosen.push((u, v));
            degrees[u.index()] += 1;
            degrees[v.index()] += 1;
            if search(edges, index + 1, n, cap, chosen, degrees, dsu_taken) {
                return true;
            }
            degrees[u.index()] -= 1;
            degrees[v.index()] -= 1;
            chosen.pop();
        }
    }
    // Branch 2: skip the edge.
    search(edges, index + 1, n, cap, chosen, degrees, dsu)
}

/// The optimum degree `Δ*` of a minimum-degree spanning tree of `graph`.
///
/// Errors when the graph is empty or disconnected (no spanning tree exists).
pub fn exact_min_degree(graph: &Graph) -> Result<usize, GraphError> {
    let n = graph.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if n == 1 {
        return Ok(0);
    }
    if !is_connected(graph) {
        return Err(GraphError::Disconnected);
    }
    let mut d = degree_lower_bound(graph).max(1);
    loop {
        if spanning_tree_with_max_degree(graph, d).is_some() {
            return Ok(d);
        }
        d += 1;
        debug_assert!(d < n, "a spanning tree of degree n − 1 always exists");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn known_optima_of_structured_families() {
        assert_eq!(exact_min_degree(&generators::path(6).unwrap()).unwrap(), 2);
        assert_eq!(exact_min_degree(&generators::cycle(7).unwrap()).unwrap(), 2);
        assert_eq!(
            exact_min_degree(&generators::complete(7).unwrap()).unwrap(),
            2
        );
        assert_eq!(exact_min_degree(&generators::star(6).unwrap()).unwrap(), 5);
        assert_eq!(
            exact_min_degree(&generators::hypercube(3).unwrap()).unwrap(),
            2
        );
        // A 3×3 grid has a Hamiltonian path (boustrophedon).
        assert_eq!(
            exact_min_degree(&generators::grid(3, 3).unwrap()).unwrap(),
            2
        );
        // The star-plus-leaf-path graph has a Hamiltonian path as well.
        assert_eq!(
            exact_min_degree(&generators::star_with_leaf_edges(8).unwrap()).unwrap(),
            2
        );
    }

    #[test]
    fn forced_hub_instances_have_high_optima() {
        let g = generators::high_optimum(4, 2).unwrap();
        assert_eq!(exact_min_degree(&g).unwrap(), 4);
        let g = generators::high_optimum(6, 1).unwrap();
        assert_eq!(exact_min_degree(&g).unwrap(), 6);
    }

    #[test]
    fn decision_procedure_matches_optimum() {
        let g = generators::gnp_connected(10, 0.3, 4).unwrap();
        let opt = exact_min_degree(&g).unwrap();
        assert!(spanning_tree_with_max_degree(&g, opt).is_some());
        if opt > 1 {
            assert!(spanning_tree_with_max_degree(&g, opt - 1).is_none());
        }
        let tree = spanning_tree_with_max_degree(&g, opt).unwrap();
        assert!(tree.is_spanning_tree_of(&g));
        assert!(tree.max_degree() <= opt);
    }

    #[test]
    fn witness_trees_respect_the_cap() {
        let g = generators::complete_bipartite(3, 5).unwrap();
        let opt = exact_min_degree(&g).unwrap();
        let tree = spanning_tree_with_max_degree(&g, opt).unwrap();
        assert!(tree.max_degree() <= opt);
        // K_{3,5}: the 5-side has 5 leaves-to-be; the optimum is ceil((8-1)/3)=3.
        assert_eq!(opt, 3);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(exact_min_degree(&generators::path(2).unwrap()).unwrap(), 1);
        assert!(exact_min_degree(&Graph::empty(0)).is_err());
        assert_eq!(exact_min_degree(&Graph::empty(1)).unwrap(), 0);
        assert!(exact_min_degree(&Graph::empty(3)).is_err());
        assert!(spanning_tree_with_max_degree(&generators::path(4).unwrap(), 0).is_none());
    }

    use mdst_graph::Graph;
}
