//! Centralized mirror of the paper's improvement rule.
//!
//! Used as the reference model for the distributed protocol: both must make
//! identical decisions (same target node, same chosen edge, same exchange)
//! because the decision rule is a deterministic function of the tree and the
//! graph. The mirror is also orders of magnitude faster, so the larger
//! parameter sweeps of the experiment harness use it to predict `k*` before
//! running the message-level simulation.

use mdst_graph::{Graph, GraphError, NodeId, RootedTree};

/// Result of a sequential improvement run.
#[derive(Debug, Clone)]
pub struct LocalSearchOutcome {
    /// The improved tree.
    pub tree: RootedTree,
    /// Rounds executed, counting the final round that finds no improvement
    /// (mirrors the distributed round counter).
    pub rounds: usize,
    /// Number of edge exchanges performed.
    pub improvements: usize,
}

/// Runs the paper's improvement rule to a Locally Optimal Tree.
///
/// Each round targets the maximum-degree node of minimum identity `p`, splits
/// `T − p` into the subtrees of `p`'s children (the fragments), and looks for
/// a graph edge joining two different fragments whose endpoints both have tree
/// degree at most `k − 2`. The best such edge (smallest maximum endpoint
/// degree, identities as tie break) is exchanged against the tree edge from
/// `p` to the fragment that reported it. The loop stops when `k ≤ 2` or no
/// admissible edge exists.
pub fn paper_local_search(
    graph: &Graph,
    initial: &RootedTree,
) -> Result<LocalSearchOutcome, GraphError> {
    initial.validate_against(graph)?;
    let mut tree = initial.clone();
    let n = graph.node_count();
    let mut rounds = 0usize;
    let mut improvements = 0usize;
    loop {
        rounds += 1;
        let k = tree.max_degree();
        if k <= 2 {
            break;
        }
        let p = tree
            .max_degree_min_id()
            .expect("a non-empty tree has a maximum-degree node");
        tree.reroot(p)?;

        // Fragment of every node: the child of `p` whose subtree contains it.
        let mut fragment_of: Vec<Option<NodeId>> = vec![None; n];
        for &child in tree.children(p) {
            for x in tree.subtree(child) {
                fragment_of[x.index()] = Some(child);
            }
        }

        // Best admissible outgoing edge, scored exactly like the distributed
        // protocol: (max endpoint degree, smaller-fragment endpoint, other).
        type ScoredSwap = ((usize, NodeId, NodeId), NodeId, NodeId, NodeId);
        let mut best: Option<ScoredSwap> = None;
        for (a, b) in graph.edges() {
            if a == p || b == p {
                continue;
            }
            let (fa, fb) = (fragment_of[a.index()], fragment_of[b.index()]);
            let (fa, fb) = match (fa, fb) {
                (Some(fa), Some(fb)) if fa != fb => (fa, fb),
                _ => continue,
            };
            let (da, db) = (tree.degree(a), tree.degree(b));
            if da + 2 > k || db + 2 > k {
                continue;
            }
            // The endpoint in the smaller-identity fragment reports the edge.
            let (u, v, cut_child) = if fa < fb { (a, b, fa) } else { (b, a, fb) };
            let score = (da.max(db), u, v);
            if best.as_ref().is_none_or(|(s, _, _, _)| score < *s) {
                best = Some((score, u, v, cut_child));
            }
        }

        match best {
            None => break,
            Some((_, u, v, cut_child)) => {
                tree.exchange(p, cut_child, u, v)?;
                improvements += 1;
            }
        }
    }
    Ok(LocalSearchOutcome {
        tree,
        rounds,
        improvements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};

    #[test]
    fn improves_the_star_seed_to_a_low_degree_tree() {
        let g = generators::star_with_leaf_edges(10).unwrap();
        let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        let out = paper_local_search(&g, &initial).unwrap();
        assert!(out.tree.is_spanning_tree_of(&g));
        assert!(out.tree.max_degree() <= 3);
        assert_eq!(out.rounds, out.improvements + 1);
        assert!(out.improvements >= initial.max_degree() - out.tree.max_degree());
    }

    #[test]
    fn already_optimal_trees_are_left_alone() {
        let g = generators::cycle(9).unwrap();
        let initial = algorithms::dfs_tree(&g, NodeId(0)).unwrap();
        let out = paper_local_search(&g, &initial).unwrap();
        assert_eq!(out.improvements, 0);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.tree.max_degree(), 2);
    }

    #[test]
    fn degree_is_monotonically_non_increasing() {
        for seed in 0..8u64 {
            let g = generators::gnp_connected(30, 0.15, seed).unwrap();
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let out = paper_local_search(&g, &initial).unwrap();
            assert!(out.tree.max_degree() <= initial.max_degree(), "seed {seed}");
            assert!(out.tree.is_spanning_tree_of(&g), "seed {seed}");
        }
    }

    #[test]
    fn rejects_foreign_initial_trees() {
        let g = generators::path(5).unwrap();
        let other = generators::star(5).unwrap();
        let t = algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        assert!(paper_local_search(&g, &t).is_err());
    }
}
