//! Message alphabet of the distributed MDegST protocol.
//!
//! The paper lists eight message kinds (SearchDegree, MoveRoot, Cut, BFS,
//! BFSBack, Update, Child, Stop) and argues every message carries at most four
//! identities/degrees, i.e. `O(log n)` bits. The enum below follows that
//! inventory; two bookkeeping messages are added (`ChildAck`, `UpdateDone`) to
//! give the coordinator the "round is terminated" signal the paper mentions
//! but does not spell out, and the cousin reply of §3.2.4 is a separate
//! `BfsReply` kind so the per-kind experiment table can distinguish wave
//! traffic from convergecast traffic.

use mdst_graph::NodeId;
use mdst_netsim::message::bits::message_bits;
use mdst_netsim::NetMessage;
use serde::{Deserialize, Serialize};

/// Identity of a fragment: the improving node `p` and the child of `p` whose
/// subtree forms the fragment. Ordered lexicographically, exactly the order
/// §3.2.4 uses to decide which side of an outgoing edge answers.
pub type FragmentId = (NodeId, NodeId);

/// An admissible outgoing edge discovered by the BFS wave.
///
/// `u` is the endpoint inside the reporting (smaller-identity) fragment, `v`
/// the endpoint in the other fragment; both tree degrees are carried so the
/// coordinator can apply the paper's choice rule ("the outgoing edge whose
/// maximal degree of its extremities is minimal").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Candidate {
    /// Endpoint in the fragment that reports the edge.
    pub u: NodeId,
    /// Endpoint in the other fragment.
    pub v: NodeId,
    /// Tree degree of `u` at discovery time.
    pub deg_u: usize,
    /// Tree degree of `v` at discovery time.
    pub deg_v: usize,
}

impl Candidate {
    /// The paper's selection key: smallest maximum endpoint degree first,
    /// identities as the deterministic tie break.
    pub fn score(&self) -> (usize, NodeId, NodeId) {
        (self.deg_u.max(self.deg_v), self.u, self.v)
    }

    /// Whether this candidate beats `other` (strictly better score).
    pub fn beats(&self, other: &Candidate) -> bool {
        self.score() < other.score()
    }

    /// Merges an optional better candidate into `best`, returning `true` when
    /// `best` changed.
    pub fn merge_into(best: &mut Option<Candidate>, candidate: Candidate) -> bool {
        match best {
            None => {
                *best = Some(candidate);
                true
            }
            Some(current) if candidate.beats(current) => {
                *best = Some(candidate);
                true
            }
            _ => false,
        }
    }
}

/// Messages of the distributed MDegST protocol.
///
/// Every variant carries `n` (the network size) purely so the wire size of the
/// message can be accounted as `O(log n)` bits without the runtime having to
/// know the protocol; `n` is never used by the receiving automaton.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MdstMsg {
    /// Round `round`: the root asks the tree for its maximum degree (§3.2.1).
    SearchInit {
        /// Round number.
        round: u32,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Convergecast reply: best `(degree, identity)` seen in the sender's
    /// subtree (§3.2.1).
    DegreeReport {
        /// Round number.
        round: u32,
        /// Maximum tree degree in the subtree.
        best_deg: usize,
        /// Identity attaining it (minimum identity on ties).
        best_id: NodeId,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Root movement toward the maximum-degree node (§3.2.2).
    MoveRoot {
        /// Round number.
        round: u32,
        /// The maximum degree `k` found by SearchDegree.
        k: usize,
        /// The node the root is moving to.
        target: NodeId,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// The coordinator virtually cuts the link to this child (§3.2.3).
    Cut {
        /// Round number.
        round: u32,
        /// The maximum degree `k`.
        k: usize,
        /// The coordinator's identity (`p`).
        root: NodeId,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Fragment BFS wave (§3.2.4): carries the fragment identity `(root, frag)`.
    Bfs {
        /// Round number.
        round: u32,
        /// The maximum degree `k`.
        k: usize,
        /// The coordinator's identity (`p`).
        root: NodeId,
        /// The fragment root (child of `p`).
        frag: NodeId,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Cousin reply of §3.2.4: sent back over an outgoing edge to the
    /// smaller-identity fragment, carrying the responder's tree degree.
    BfsReply {
        /// Round number.
        round: u32,
        /// Tree degree of the responder.
        responder_degree: usize,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Convergecast of the best admissible outgoing edge of a subtree
    /// (§3.2.4 "BFS-Back").
    BfsBack {
        /// Round number.
        round: u32,
        /// Best candidate of the subtree, if any.
        candidate: Option<Candidate>,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// The coordinator's chosen exchange, routed toward the owner of the
    /// outgoing edge (§3.2.5).
    Update {
        /// Round number.
        round: u32,
        /// Owner endpoint of the chosen edge (inside the cut fragment).
        u: NodeId,
        /// Far endpoint of the chosen edge.
        v: NodeId,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Attachment across the chosen edge: the sender becomes a child of the
    /// receiver (§3.2.5).
    Child {
        /// Round number.
        round: u32,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Acknowledgement of `Child`, so the round-completion signal only travels
    /// once the new tree edge is installed on both sides.
    ChildAck {
        /// Round number.
        round: u32,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Round-completion signal routed back to the coordinator.
    UpdateDone {
        /// Round number.
        round: u32,
        /// Network size (bit accounting only).
        n: usize,
    },
    /// Termination broadcast: the tree is final (§3.2.5 / §3.2.6).
    Stop {
        /// Network size (bit accounting only).
        n: usize,
    },
}

impl MdstMsg {
    /// Round number carried by the message (`None` for `Stop`, which is not
    /// round-scoped).
    pub fn round(&self) -> Option<u32> {
        match self {
            MdstMsg::SearchInit { round, .. }
            | MdstMsg::DegreeReport { round, .. }
            | MdstMsg::MoveRoot { round, .. }
            | MdstMsg::Cut { round, .. }
            | MdstMsg::Bfs { round, .. }
            | MdstMsg::BfsReply { round, .. }
            | MdstMsg::BfsBack { round, .. }
            | MdstMsg::Update { round, .. }
            | MdstMsg::Child { round, .. }
            | MdstMsg::ChildAck { round, .. }
            | MdstMsg::UpdateDone { round, .. } => Some(*round),
            MdstMsg::Stop { .. } => None,
        }
    }
}

impl NetMessage for MdstMsg {
    fn kind(&self) -> &'static str {
        match self {
            MdstMsg::SearchInit { .. } => "SearchInit",
            MdstMsg::DegreeReport { .. } => "DegreeReport",
            MdstMsg::MoveRoot { .. } => "MoveRoot",
            MdstMsg::Cut { .. } => "Cut",
            MdstMsg::Bfs { .. } => "BFS",
            MdstMsg::BfsReply { .. } => "BFSReply",
            MdstMsg::BfsBack { .. } => "BFSBack",
            MdstMsg::Update { .. } => "Update",
            MdstMsg::Child { .. } => "Child",
            MdstMsg::ChildAck { .. } => "ChildAck",
            MdstMsg::UpdateDone { .. } => "UpdateDone",
            MdstMsg::Stop { .. } => "Stop",
        }
    }

    fn encoded_bits(&self) -> usize {
        // Number of identity/degree-sized fields per message kind; the round
        // counter is bounded by n (at most n − 2 improvement rounds), so it
        // also counts as one O(log n) field.
        match self {
            MdstMsg::SearchInit { n, .. } => message_bits(*n, 1),
            MdstMsg::DegreeReport { n, .. } => message_bits(*n, 3),
            MdstMsg::MoveRoot { n, .. } => message_bits(*n, 3),
            MdstMsg::Cut { n, .. } => message_bits(*n, 3),
            MdstMsg::Bfs { n, .. } => message_bits(*n, 4),
            MdstMsg::BfsReply { n, .. } => message_bits(*n, 2),
            MdstMsg::BfsBack { n, candidate, .. } => {
                message_bits(*n, 1 + if candidate.is_some() { 4 } else { 0 })
            }
            MdstMsg::Update { n, .. } => message_bits(*n, 3),
            MdstMsg::Child { n, .. } => message_bits(*n, 1),
            MdstMsg::ChildAck { n, .. } => message_bits(*n, 1),
            MdstMsg::UpdateDone { n, .. } => message_bits(*n, 1),
            MdstMsg::Stop { n } => message_bits(*n, 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(u: usize, v: usize, du: usize, dv: usize) -> Candidate {
        Candidate {
            u: NodeId::new(u),
            v: NodeId::new(v),
            deg_u: du,
            deg_v: dv,
        }
    }

    #[test]
    fn candidate_score_prefers_low_maximum_degree() {
        let a = cand(5, 6, 1, 2);
        let b = cand(1, 2, 3, 1);
        assert!(a.beats(&b));
        assert!(!b.beats(&a));
    }

    #[test]
    fn candidate_score_breaks_ties_by_identity() {
        let a = cand(1, 9, 2, 2);
        let b = cand(2, 3, 2, 2);
        assert!(a.beats(&b));
    }

    #[test]
    fn merge_into_keeps_the_best() {
        let mut best = None;
        assert!(Candidate::merge_into(&mut best, cand(4, 5, 3, 3)));
        assert!(!Candidate::merge_into(&mut best, cand(6, 7, 3, 3)));
        assert!(Candidate::merge_into(&mut best, cand(6, 7, 1, 1)));
        assert_eq!(best.unwrap().u, NodeId(6));
    }

    #[test]
    fn message_kinds_cover_the_papers_inventory() {
        let n = 16;
        let msgs = vec![
            MdstMsg::SearchInit { round: 1, n },
            MdstMsg::DegreeReport {
                round: 1,
                best_deg: 3,
                best_id: NodeId(2),
                n,
            },
            MdstMsg::MoveRoot {
                round: 1,
                k: 3,
                target: NodeId(2),
                n,
            },
            MdstMsg::Cut {
                round: 1,
                k: 3,
                root: NodeId(2),
                n,
            },
            MdstMsg::Bfs {
                round: 1,
                k: 3,
                root: NodeId(2),
                frag: NodeId(4),
                n,
            },
            MdstMsg::BfsReply {
                round: 1,
                responder_degree: 1,
                n,
            },
            MdstMsg::BfsBack {
                round: 1,
                candidate: None,
                n,
            },
            MdstMsg::Update {
                round: 1,
                u: NodeId(5),
                v: NodeId(6),
                n,
            },
            MdstMsg::Child { round: 1, n },
            MdstMsg::ChildAck { round: 1, n },
            MdstMsg::UpdateDone { round: 1, n },
            MdstMsg::Stop { n },
        ];
        let kinds: std::collections::BTreeSet<&str> = msgs.iter().map(|m| m.kind()).collect();
        assert_eq!(kinds.len(), msgs.len(), "kinds must be distinct");
        for m in &msgs {
            // "All messages are of size O(log n) … at most four numbers or
            // identities by message" (§4.2): tag + at most 5 log-sized fields.
            assert!(m.encoded_bits() <= 4 + 5 * 4, "{:?}", m);
            if !matches!(m, MdstMsg::Stop { .. }) {
                assert_eq!(m.round(), Some(1));
            }
        }
        assert_eq!(MdstMsg::Stop { n }.round(), None);
    }

    #[test]
    fn bfsback_with_candidate_is_larger_than_without() {
        let with = MdstMsg::BfsBack {
            round: 1,
            candidate: Some(cand(0, 1, 1, 1)),
            n: 64,
        };
        let without = MdstMsg::BfsBack {
            round: 1,
            candidate: None,
            n: 64,
        };
        assert!(with.encoded_bits() > without.encoded_bits());
    }
}
