//! The distributed MDegST improvement protocol (§3 of the paper).
//!
//! The protocol assumes a rooted spanning tree is already in place (every node
//! knows its parent, its children and the identity of the tree's root — the
//! "termination by process" of the startup construction). It then runs rounds
//! coordinated by a moving root:
//!
//! 1. **SearchDegree** — a broadcast/convergecast over the tree computes the
//!    maximum tree degree `k` and the maximum-degree node `p` of minimum
//!    identity; every node remembers through which child the winning value
//!    arrived (its `via` pointer).
//! 2. **MoveRoot** — the root walks to `p` along the `via` pointers, reversing
//!    the parent/child orientation on the way (path reversal). `p` becomes the
//!    coordinator of the round.
//! 3. **Cut** — `p` virtually cuts its `k` child subtrees into *fragments*,
//!    identified by the pair `(p, child)`.
//! 4. **BFS** — every fragment floods a wave; waves crossing a non-tree edge
//!    between two different fragments discover an *outgoing* edge. The side in
//!    the smaller fragment collects the candidate provided both endpoints have
//!    tree degree at most `k − 2` (nodes of degree `k − 1` "are simply
//!    ignored", §4.1). A convergecast (BFSBack) returns the best candidate of
//!    each fragment to `p`.
//! 5. **Choose** — `p` picks the outgoing edge whose endpoints' maximum degree
//!    is minimal, drops the tree edge to the child whose fragment supplied it,
//!    and routes an Update along the stored `via` pointers. The path inside
//!    the fragment is reversed, the owning node attaches across the chosen
//!    edge (Child / ChildAck), and an UpdateDone convergecast tells `p` the
//!    exchange is complete, so the next round can start.
//!
//! The algorithm stops (Stop broadcast) when `k ≤ 2` or when the selected
//! maximum-degree node has no admissible outgoing edge, i.e. the tree is a
//! Locally Optimal Tree in the sense of Fürer & Raghavachari's Theorem 1.
//!
//! Departures from the paper's prose (documented in DESIGN.md §4): rounds are
//! serialised — each round improves the single maximum-degree node of minimum
//! identity rather than all maximum-degree nodes concurrently (§3.2.6); the
//! final degree is identical, only the round count differs. Messages carry an
//! explicit round number so late messages from a finished round are discarded
//! rather than misinterpreted.

mod messages;
mod node;

pub use messages::{Candidate, FragmentId, MdstMsg};
pub use node::MdstNode;
