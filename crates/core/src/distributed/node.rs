//! The per-node automaton of the distributed MDegST protocol.
//!
//! See the module-level documentation of [`crate::distributed`] for the round
//! structure. The automaton is a plain state machine over the message alphabet
//! of [`super::messages`]; it never inspects global state, never uses timers
//! and addresses only direct neighbours, exactly as the paper's model (§2)
//! requires.

use super::messages::{Candidate, FragmentId, MdstMsg};
use mdst_graph::{NodeId, RootedTree};
use mdst_netsim::{Context, Protocol};
use mdst_spanning::TreeState;
use std::collections::BTreeSet;

/// Per-node state of the distributed MDegST improvement.
///
/// `Hash` covers the *entire* state, so two nodes hash equally exactly when
/// they behave identically on every future message — the property the
/// `mdst-check` model checker's state fingerprinting relies on for sound
/// revisit pruning.
#[derive(Debug, Clone, Hash)]
pub struct MdstNode {
    id: NodeId,
    // ----- spanning-tree structure (mutated by MoveRoot and Update) -----
    parent: Option<NodeId>,
    children: BTreeSet<NodeId>,
    is_initial_root: bool,
    done: bool,

    // ----- statistics -----
    improvements_made: u32,
    rounds_coordinated: u32,

    // ----- round-scoped state -----
    /// Highest round number this node has joined.
    round: u32,
    /// Maximum tree degree `k` of the current round (learnt from Cut/BFS).
    round_k: usize,

    // SearchDegree convergecast.
    search_pending: BTreeSet<NodeId>,
    search_best: (usize, NodeId),
    search_via: Option<NodeId>,

    // Coordinator (node `p`) state.
    coordinator: bool,
    choose_pending: BTreeSet<NodeId>,

    // Fragment BFS state.
    fragment: Option<FragmentId>,
    bfs_expected: BTreeSet<NodeId>,
    bfs_reported: bool,
    pending_cousins: Vec<(NodeId, FragmentId)>,

    // Best candidate of this node's subtree (or, at the coordinator, across
    // all fragments) and the child it came through (`None` = own candidate).
    best_candidate: Option<Candidate>,
    best_via_child: Option<NodeId>,

    // Update routing.
    update_sender: Option<NodeId>,
}

impl MdstNode {
    /// Creates the automaton for node `id` with its local view of the initial
    /// spanning tree (parent and children). The node whose `parent` is `None`
    /// is the initial root and will initiate the first round.
    pub fn new(id: NodeId, parent: Option<NodeId>, children: BTreeSet<NodeId>) -> Self {
        MdstNode {
            id,
            is_initial_root: parent.is_none(),
            parent,
            children,
            done: false,
            improvements_made: 0,
            rounds_coordinated: 0,
            round: 0,
            round_k: 0,
            search_pending: BTreeSet::new(),
            search_best: (0, id),
            search_via: None,
            coordinator: false,
            choose_pending: BTreeSet::new(),
            fragment: None,
            bfs_expected: BTreeSet::new(),
            bfs_reported: false,
            pending_cousins: Vec::new(),
            best_candidate: None,
            best_via_child: None,
            update_sender: None,
        }
    }

    /// Builds one automaton per node from a centralized view of the initial
    /// tree (the usual way the driver seeds a run).
    pub fn from_tree(tree: &RootedTree) -> Vec<MdstNode> {
        (0..tree.node_count())
            .map(|u| {
                let id = NodeId::new(u);
                MdstNode::new(
                    id,
                    tree.parent(id),
                    tree.children(id).iter().copied().collect(),
                )
            })
            .collect()
    }

    /// Current parent in the (possibly already improved) tree.
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// Current children in the tree.
    pub fn children(&self) -> &BTreeSet<NodeId> {
        &self.children
    }

    /// Current tree degree of this node.
    pub fn degree(&self) -> usize {
        self.children.len() + usize::from(self.parent.is_some())
    }

    /// Number of edge exchanges this node performed while acting as the
    /// coordinator.
    pub fn improvements_made(&self) -> u32 {
        self.improvements_made
    }

    /// Number of rounds this node coordinated (was the maximum-degree target).
    pub fn rounds_coordinated(&self) -> u32 {
        self.rounds_coordinated
    }

    /// Highest round number this node has participated in.
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Whether this node has received the final Stop.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The invariant-relevant slice of this node's state, consumed by
    /// [`crate::verify::check_safety_invariants`] and the `mdst-check`
    /// model checker.
    pub fn snapshot(&self) -> crate::verify::NodeSnapshot {
        crate::verify::NodeSnapshot {
            parent: self.parent,
            round: self.round,
            fragment: self.fragment,
            coordinator: self.coordinator,
            done: self.done,
        }
    }

    // ------------------------------------------------------------------
    // Round orchestration (current root / coordinator side).
    // ------------------------------------------------------------------

    fn reset_round_state(&mut self) {
        self.search_pending.clear();
        self.search_best = (self.degree(), self.id);
        self.search_via = None;
        self.coordinator = false;
        self.choose_pending.clear();
        self.fragment = None;
        self.bfs_expected.clear();
        self.bfs_reported = false;
        self.pending_cousins.clear();
        self.best_candidate = None;
        self.best_via_child = None;
        self.update_sender = None;
    }

    /// Starts a new round at the current root: SearchDegree broadcast.
    fn start_round(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        debug_assert!(self.parent.is_none(), "only the root starts rounds");
        self.round += 1;
        self.reset_round_state();
        self.search_pending = self.children.clone();
        if self.search_pending.is_empty() {
            self.finalize_search(ctx);
            return;
        }
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.search_pending.iter().copied().collect();
        for c in targets {
            ctx.send(
                c,
                MdstMsg::SearchInit {
                    round: self.round,
                    n,
                },
            );
        }
    }

    /// The root has the global `(k, p)`; either stop, become the coordinator,
    /// or move the root toward `p` (§3.2.2).
    fn finalize_search(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        let (k, p) = self.search_best;
        if k <= 2 {
            // The tree is a chain (or trivially small): optimal, stop.
            self.broadcast_stop(ctx);
            return;
        }
        if p == self.id {
            self.become_coordinator(k, ctx);
        } else {
            let via = self
                .search_via
                .expect("the maximum-degree node lies in some child subtree");
            // Path reversal, first step: the via child becomes the parent.
            self.parent = Some(via);
            self.children.remove(&via);
            let n = ctx.network_size();
            ctx.send(
                via,
                MdstMsg::MoveRoot {
                    round: self.round,
                    k,
                    target: p,
                    n,
                },
            );
        }
    }

    /// `p` starts the Cut/BFS phase of the round (§3.2.3).
    fn become_coordinator(&mut self, k: usize, ctx: &mut dyn Context<MdstMsg>) {
        debug_assert!(self.parent.is_none());
        debug_assert_eq!(self.degree(), k, "the coordinator has the maximum degree");
        self.coordinator = true;
        self.rounds_coordinated += 1;
        self.round_k = k;
        self.choose_pending = self.children.clone();
        self.best_candidate = None;
        self.best_via_child = None;
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.children.iter().copied().collect();
        for c in targets {
            ctx.send(
                c,
                MdstMsg::Cut {
                    round: self.round,
                    k,
                    root: self.id,
                    n,
                },
            );
        }
    }

    /// The coordinator has every fragment's report: either exchange or stop
    /// (§3.2.5 Choose).
    fn choose(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        match self.best_candidate {
            None => {
                // No admissible outgoing edge anywhere: the maximum degree of
                // the tree cannot be (locally) improved — terminate.
                self.broadcast_stop(ctx);
            }
            Some(candidate) => {
                let via = self
                    .best_via_child
                    .expect("the winning candidate was reported by a child fragment");
                // "The child which sends the best outgoing edge will be
                // suppressed from the children set."
                self.children.remove(&via);
                self.improvements_made += 1;
                let n = ctx.network_size();
                ctx.send(
                    via,
                    MdstMsg::Update {
                        round: self.round,
                        u: candidate.u,
                        v: candidate.v,
                        n,
                    },
                );
            }
        }
    }

    fn broadcast_stop(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        self.done = true;
        self.coordinator = false;
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.children.iter().copied().collect();
        for c in targets {
            ctx.send(c, MdstMsg::Stop { n });
        }
    }

    // ------------------------------------------------------------------
    // SearchDegree (§3.2.1).
    // ------------------------------------------------------------------

    /// `(degree, identity)` ordering: larger degree wins, ties go to the
    /// smaller identity.
    fn search_better(candidate: (usize, NodeId), current: (usize, NodeId)) -> bool {
        candidate.0 > current.0 || (candidate.0 == current.0 && candidate.1 < current.1)
    }

    fn on_search_init(&mut self, round: u32, ctx: &mut dyn Context<MdstMsg>) {
        self.round = round;
        self.reset_round_state();
        self.search_pending = self.children.clone();
        let n = ctx.network_size();
        if self.search_pending.is_empty() {
            let parent = self.parent.expect("a non-root node received SearchInit");
            ctx.send(
                parent,
                MdstMsg::DegreeReport {
                    round,
                    best_deg: self.search_best.0,
                    best_id: self.search_best.1,
                    n,
                },
            );
            return;
        }
        let targets: Vec<NodeId> = self.search_pending.iter().copied().collect();
        for c in targets {
            ctx.send(c, MdstMsg::SearchInit { round, n });
        }
    }

    fn on_degree_report(
        &mut self,
        from: NodeId,
        best_deg: usize,
        best_id: NodeId,
        ctx: &mut dyn Context<MdstMsg>,
    ) {
        if Self::search_better((best_deg, best_id), self.search_best) {
            self.search_best = (best_deg, best_id);
            self.search_via = Some(from);
        }
        self.search_pending.remove(&from);
        if !self.search_pending.is_empty() {
            return;
        }
        match self.parent {
            Some(parent) => {
                let n = ctx.network_size();
                ctx.send(
                    parent,
                    MdstMsg::DegreeReport {
                        round: self.round,
                        best_deg: self.search_best.0,
                        best_id: self.search_best.1,
                        n,
                    },
                );
            }
            None => self.finalize_search(ctx),
        }
    }

    fn on_move_root(
        &mut self,
        from: NodeId,
        k: usize,
        target: NodeId,
        ctx: &mut dyn Context<MdstMsg>,
    ) {
        // Path reversal: the old parent becomes a child.
        self.children.insert(from);
        if target == self.id {
            self.parent = None;
            self.become_coordinator(k, ctx);
            return;
        }
        let via = self
            .search_via
            .expect("the move-root path follows the stored via pointers");
        self.parent = Some(via);
        self.children.remove(&via);
        let n = ctx.network_size();
        ctx.send(
            via,
            MdstMsg::MoveRoot {
                round: self.round,
                k,
                target,
                n,
            },
        );
    }

    // ------------------------------------------------------------------
    // Fragments and the BFS wave (§3.2.3 / §3.2.4).
    // ------------------------------------------------------------------

    fn enter_fragment(&mut self, k: usize, frag: FragmentId, ctx: &mut dyn Context<MdstMsg>) {
        self.round_k = k;
        self.fragment = Some(frag);
        self.bfs_reported = false;
        self.best_candidate = None;
        self.best_via_child = None;
        let parent = self.parent;
        self.bfs_expected = ctx
            .neighbors()
            .iter()
            .copied()
            .filter(|&v| Some(v) != parent)
            .collect();
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.bfs_expected.iter().copied().collect();
        for v in targets {
            ctx.send(
                v,
                MdstMsg::Bfs {
                    round: self.round,
                    k,
                    root: frag.0,
                    frag: frag.1,
                    n,
                },
            );
        }
        // Cousin waves that arrived before we knew our fragment identity
        // ("the answer has to be delayed", §3.2.4 first case).
        let queued = std::mem::take(&mut self.pending_cousins);
        for (sender, theirs) in queued {
            self.handle_cousin(sender, theirs, ctx);
        }
        self.maybe_complete_bfs(ctx);
    }

    fn handle_cousin(
        &mut self,
        sender: NodeId,
        theirs: FragmentId,
        ctx: &mut dyn Context<MdstMsg>,
    ) {
        let mine = self
            .fragment
            .expect("cousin waves are only handled once the fragment is known");
        match theirs.cmp(&mine) {
            std::cmp::Ordering::Less => {
                // The sender's fragment has the smaller identity: it collects
                // the outgoing edge, we answer with our degree (§3.2.4 second
                // case) — and its wave doubles as its answer to ours.
                let n = ctx.network_size();
                ctx.send(
                    sender,
                    MdstMsg::BfsReply {
                        round: self.round,
                        responder_degree: self.degree(),
                        n,
                    },
                );
                self.bfs_expected.remove(&sender);
                self.maybe_complete_bfs(ctx);
            }
            std::cmp::Ordering::Equal => {
                // Internal (same-fragment) non-tree edge: nothing to report,
                // the crossing wave is the answer on both sides.
                self.bfs_expected.remove(&sender);
                self.maybe_complete_bfs(ctx);
            }
            std::cmp::Ordering::Greater => {
                // Our fragment is smaller: ignore; the sender will answer the
                // wave we sent (or already answered it) with a BFSReply
                // (§3.2.4 third case).
            }
        }
    }

    fn on_bfs_reply(
        &mut self,
        from: NodeId,
        responder_degree: usize,
        ctx: &mut dyn Context<MdstMsg>,
    ) {
        // The responder sits in another fragment (or is the coordinator). The
        // edge is admissible only if both endpoints could absorb one more tree
        // edge without reaching degree k − 1 (§3.2.4: degree-(k−1) nodes "would
        // not improve the maximum degree").
        let my_degree = self.degree();
        if my_degree + 2 <= self.round_k && responder_degree + 2 <= self.round_k {
            let candidate = Candidate {
                u: self.id,
                v: from,
                deg_u: my_degree,
                deg_v: responder_degree,
            };
            if Candidate::merge_into(&mut self.best_candidate, candidate) {
                self.best_via_child = None;
            }
        }
        self.bfs_expected.remove(&from);
        self.maybe_complete_bfs(ctx);
    }

    fn on_bfs_back(
        &mut self,
        from: NodeId,
        candidate: Option<Candidate>,
        ctx: &mut dyn Context<MdstMsg>,
    ) {
        if let Some(candidate) = candidate {
            if Candidate::merge_into(&mut self.best_candidate, candidate) {
                self.best_via_child = Some(from);
            }
        }
        if self.coordinator {
            self.choose_pending.remove(&from);
            if self.choose_pending.is_empty() {
                self.choose(ctx);
            }
        } else {
            self.bfs_expected.remove(&from);
            self.maybe_complete_bfs(ctx);
        }
    }

    fn maybe_complete_bfs(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        if self.bfs_reported || self.fragment.is_none() || !self.bfs_expected.is_empty() {
            return;
        }
        self.bfs_reported = true;
        let parent = self
            .parent
            .expect("every fragment member has a parent (the coordinator for fragment roots)");
        let n = ctx.network_size();
        ctx.send(
            parent,
            MdstMsg::BfsBack {
                round: self.round,
                candidate: self.best_candidate,
                n,
            },
        );
    }

    // ------------------------------------------------------------------
    // The exchange (§3.2.5).
    // ------------------------------------------------------------------

    fn on_update(&mut self, from: NodeId, u: NodeId, v: NodeId, ctx: &mut dyn Context<MdstMsg>) {
        self.update_sender = Some(from);
        let from_coordinator = self.fragment.map(|f| f.0) == Some(from);
        if !from_coordinator {
            // The tree edge to the old parent is reversed, not deleted.
            self.children.insert(from);
        }
        let n = ctx.network_size();
        if u == self.id {
            // This node owns the chosen outgoing edge: attach across it.
            self.parent = Some(v);
            ctx.send(
                v,
                MdstMsg::Child {
                    round: self.round,
                    n,
                },
            );
        } else {
            let via = self
                .best_via_child
                .expect("the update follows the via pointers toward the owner");
            self.parent = Some(via);
            self.children.remove(&via);
            ctx.send(
                via,
                MdstMsg::Update {
                    round: self.round,
                    u,
                    v,
                    n,
                },
            );
        }
    }

    fn on_child(&mut self, from: NodeId, ctx: &mut dyn Context<MdstMsg>) {
        self.children.insert(from);
        let n = ctx.network_size();
        ctx.send(
            from,
            MdstMsg::ChildAck {
                round: self.round,
                n,
            },
        );
    }

    fn on_child_ack(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        let back = self
            .update_sender
            .expect("ChildAck only reaches the node that sent Child");
        let n = ctx.network_size();
        ctx.send(
            back,
            MdstMsg::UpdateDone {
                round: self.round,
                n,
            },
        );
    }

    fn on_update_done(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        if self.coordinator {
            // The exchange is installed everywhere: run the next round.
            self.start_round(ctx);
            return;
        }
        let back = self
            .update_sender
            .expect("UpdateDone retraces the Update path");
        let n = ctx.network_size();
        ctx.send(
            back,
            MdstMsg::UpdateDone {
                round: self.round,
                n,
            },
        );
    }

    fn on_stop(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        if self.done {
            return;
        }
        self.done = true;
        let n = ctx.network_size();
        let targets: Vec<NodeId> = self.children.iter().copied().collect();
        for c in targets {
            ctx.send(c, MdstMsg::Stop { n });
        }
    }
}

impl Protocol for MdstNode {
    type Message = MdstMsg;

    fn on_start(&mut self, ctx: &mut dyn Context<MdstMsg>) {
        if self.is_initial_root && self.round == 0 && !self.done {
            self.start_round(ctx);
        }
    }

    fn on_message(&mut self, from: NodeId, msg: MdstMsg, ctx: &mut dyn Context<MdstMsg>) {
        if self.done {
            return;
        }
        if let Some(round) = msg.round() {
            if round < self.round {
                // Late message from an already finished round (e.g. an ignored
                // cousin wave still in flight): drop it.
                return;
            }
        }
        match msg {
            MdstMsg::SearchInit { round, .. } => self.on_search_init(round, ctx),
            MdstMsg::DegreeReport {
                best_deg, best_id, ..
            } => self.on_degree_report(from, best_deg, best_id, ctx),
            MdstMsg::MoveRoot { k, target, .. } => self.on_move_root(from, k, target, ctx),
            MdstMsg::Cut { k, root, .. } => self.enter_fragment(k, (root, self.id), ctx),
            MdstMsg::Bfs { k, root, frag, .. } => {
                self.round_k = k;
                if self.coordinator {
                    // The coordinator answers cousin waves with its own degree
                    // (k), which the admissibility filter then rejects.
                    let n = ctx.network_size();
                    ctx.send(
                        from,
                        MdstMsg::BfsReply {
                            round: self.round,
                            responder_degree: self.round_k,
                            n,
                        },
                    );
                } else if Some(from) == self.parent && self.fragment.is_none() {
                    self.enter_fragment(k, (root, frag), ctx);
                } else if self.fragment.is_none() {
                    self.pending_cousins.push((from, (root, frag)));
                } else {
                    self.handle_cousin(from, (root, frag), ctx);
                }
            }
            MdstMsg::BfsReply {
                responder_degree, ..
            } => self.on_bfs_reply(from, responder_degree, ctx),
            MdstMsg::BfsBack { candidate, .. } => self.on_bfs_back(from, candidate, ctx),
            MdstMsg::Update { u, v, .. } => self.on_update(from, u, v, ctx),
            MdstMsg::Child { .. } => self.on_child(from, ctx),
            MdstMsg::ChildAck { .. } => self.on_child_ack(ctx),
            MdstMsg::UpdateDone { .. } => self.on_update_done(ctx),
            MdstMsg::Stop { .. } => self.on_stop(ctx),
        }
    }

    fn is_terminated(&self) -> bool {
        self.done
    }
}

impl TreeState for MdstNode {
    fn tree_parent(&self) -> Option<NodeId> {
        self.parent
    }
    fn tree_children(&self) -> &BTreeSet<NodeId> {
        &self.children
    }
    fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};
    use mdst_netsim::{SimConfig, Simulator};
    use mdst_spanning::collect_tree;

    /// Runs the improvement protocol on `graph` starting from `initial` and
    /// returns the final tree plus the simulator.
    fn run(
        graph: &std::sync::Arc<mdst_graph::Graph>,
        initial: &RootedTree,
    ) -> (RootedTree, Simulator<MdstNode>) {
        let nodes = MdstNode::from_tree(initial);
        let mut sim = Simulator::new(graph, SimConfig::default(), |id, _| {
            nodes[id.index()].clone()
        })
        .unwrap();
        sim.run().expect("protocol quiesces");
        assert!(sim.all_terminated(), "every node must receive Stop");
        let tree = collect_tree(sim.nodes()).expect("consistent final tree");
        tree.validate_against(graph)
            .expect("final tree spans the graph");
        (tree, sim)
    }

    #[test]
    fn star_seed_on_star_plus_path_reaches_degree_two() {
        // The canonical worst case: the graph is a star plus a path through the
        // leaves; the initial tree is the star (degree n − 1); the optimum is a
        // Hamiltonian path of degree 2.
        let g = std::sync::Arc::new(generators::star_with_leaf_edges(8).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert_eq!(initial.max_degree(), 7);
        let (final_tree, _) = run(&g, &initial);
        assert!(final_tree.max_degree() <= 3);
        assert!(final_tree.is_spanning_tree_of(&g));
    }

    #[test]
    fn single_node_and_single_edge_terminate_immediately() {
        let g1 = std::sync::Arc::new(mdst_graph::Graph::empty(1));
        let t1 = RootedTree::from_parents(NodeId(0), vec![None]).unwrap();
        let (f1, sim1) = run(&g1, &t1);
        assert_eq!(f1.node_count(), 1);
        assert_eq!(sim1.metrics().messages_total, 0);

        let g2 = std::sync::Arc::new(generators::path(2).unwrap());
        let t2 = algorithms::bfs_tree(&g2, NodeId(0)).unwrap();
        let (f2, _) = run(&g2, &t2);
        assert_eq!(f2.max_degree(), 1);
    }

    #[test]
    fn already_optimal_chain_stops_after_one_search() {
        let g = std::sync::Arc::new(generators::cycle(8).unwrap());
        let initial = algorithms::dfs_tree(&g, NodeId(0)).unwrap();
        assert_eq!(initial.max_degree(), 2);
        let (final_tree, sim) = run(&g, &initial);
        assert_eq!(final_tree.max_degree(), 2);
        // One SearchDegree convergecast plus the Stop broadcast, nothing else.
        assert_eq!(sim.metrics().count_of("Cut"), 0);
        assert_eq!(sim.metrics().count_of("Update"), 0);
        assert_eq!(sim.metrics().count_of("Stop"), 7);
    }

    #[test]
    fn degree_never_increases_and_improves_on_complete_graph() {
        let g = std::sync::Arc::new(generators::complete(10).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert_eq!(initial.max_degree(), 9);
        let (final_tree, sim) = run(&g, &initial);
        assert!(final_tree.max_degree() < initial.max_degree());
        assert!(
            final_tree.max_degree() <= 3,
            "complete graphs admit a Hamiltonian path"
        );
        let improvements: u32 = sim.nodes().iter().map(|p| p.improvements_made()).sum();
        assert_eq!(
            improvements as usize,
            sim.nodes().iter().map(|p| p.round()).max().unwrap() as usize - 1,
            "every round except the last performs exactly one exchange"
        );
    }

    #[test]
    fn random_graphs_yield_valid_locally_improved_trees() {
        for seed in 0..6u64 {
            let g = std::sync::Arc::new(generators::gnp_connected(26, 0.15, seed).unwrap());
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let (final_tree, _) = run(&g, &initial);
            assert!(
                final_tree.max_degree() <= initial.max_degree(),
                "seed {seed}"
            );
            assert!(final_tree.is_spanning_tree_of(&g), "seed {seed}");
        }
    }

    #[test]
    fn works_under_adversarial_delays() {
        use mdst_netsim::DelayModel;
        let g = std::sync::Arc::new(generators::gnp_connected(20, 0.2, 3).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        let unit_final = {
            let (t, _) = run(&g, &initial);
            t
        };
        for seed in 0..4u64 {
            let nodes = MdstNode::from_tree(&initial);
            let cfg = SimConfig {
                delay: DelayModel::PerLinkFixed {
                    min: 1,
                    max: 23,
                    seed,
                },
                ..Default::default()
            };
            let mut sim = Simulator::new(&g, cfg, |id, _| nodes[id.index()].clone()).unwrap();
            sim.run().unwrap();
            assert!(sim.all_terminated());
            let tree = collect_tree(sim.nodes()).unwrap();
            tree.validate_against(&g).unwrap();
            // The protocol is deterministic in its decisions (they depend only
            // on tree structure, not timing), so the final degree matches the
            // unit-delay run.
            assert_eq!(tree.max_degree(), unit_final.max_degree(), "seed {seed}");
        }
    }
}
