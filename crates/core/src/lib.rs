//! # mdst-core
//!
//! The primary contribution of Blin & Butelle's paper — the first distributed
//! approximation algorithm for the Minimum Degree Spanning Tree problem on
//! general graphs — together with everything needed to evaluate it:
//!
//! * [`distributed`] — the message-driven node automaton implementing the
//!   paper's rounds (SearchDegree, MoveRoot, Cut, BFS, BFSBack, Choose,
//!   Update/Child, Stop), runnable on the `mdst-netsim` simulator or threaded
//!   runtime.
//! * [`driver`] — the experiment pipeline behind the unified [`Pipeline`]
//!   session builder: build an initial spanning tree (any `mdst-spanning`
//!   construction), run the distributed improvement on any executor backend,
//!   and report degrees, rounds and message/time complexities through one
//!   [`RunReport`] / [`Outcome`] shape.
//! * [`observer`] — streaming [`Observer`] taps on a pipeline session
//!   (construction-done, per-round, per-exchange, per-fault, finish).
//! * [`sequential`] — centralized baselines: the paper's improvement rule as a
//!   sequential mirror (used for cross-validation of the distributed run), a
//!   Fürer–Raghavachari-style local search, and an exact branch-and-bound
//!   solver for small instances.
//! * [`verify`] — spanning-tree validity and local-optimality certificates.
//! * [`bounds`] — the Korach–Moran–Zaks message lower bound and degree lower
//!   bounds used by the experiment tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bounds;
pub mod distributed;
pub mod driver;
pub mod observer;
pub mod sequential;
pub mod verify;

pub use distributed::{Candidate, MdstMsg, MdstNode};
pub use driver::{
    run_distributed_mdst, run_distributed_mdst_on, MdstRun, Outcome, Pipeline, PipelineConfig,
    PipelineError, RunReport,
};
#[allow(deprecated)]
pub use driver::{
    run_pipeline, run_pipeline_with_faults, FaultPipelineReport, PipelineReport, RunStatus,
};
pub use observer::{
    ChannelObserver, ConstructionEvent, CountingObserver, ExchangeEvent, FaultEvent, FinishSummary,
    Observer, RoundEvent, SessionEvent,
};
pub use verify::{
    check_safety_invariants, survivor_report, InvariantViolation, NodeSnapshot, SurvivorReport,
};
