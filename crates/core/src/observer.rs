//! Streaming progress observers for [`crate::driver::Pipeline`] sessions.
//!
//! A campaign runner, a bench harness or a live dashboard wants to watch a
//! pipeline run *as it progresses* instead of parsing a message trace after
//! the fact. The [`Observer`] trait is that tap: register one (or several)
//! through [`crate::driver::Pipeline::observer`] and the driver delivers a
//! stream of typed events:
//!
//! 1. [`Observer::on_construction_done`] — fired live at the phase boundary,
//!    after the initial spanning tree is built and before the improvement
//!    protocol starts.
//! 2. [`Observer::on_round`] / [`Observer::on_exchange`] — one event per
//!    improvement round and per edge exchange. These are derived from the
//!    uniform executor result (and are therefore identical on every backend):
//!    the backends run the improvement phase to quiescence in one call, so
//!    the per-round events are replayed in causal order once the phase
//!    completes, not interleaved with it.
//! 3. [`Observer::on_fault`] — one event per injected fault. With a
//!    simulator trace (`record_trace = true`) every dropped message is
//!    reported individually with its simulated time; without one the driver
//!    still reports every crashed node and an aggregate drop count.
//! 4. [`Observer::on_finish`] — fired exactly once with the final
//!    [`crate::driver::RunReport`], after all other events.
//!
//! Every method has an empty default body, so an observer implements only
//! the events it cares about. Observers are plain `&mut` borrows: the
//! builder releases them when `run()` returns, so a caller can accumulate
//! into a local struct and inspect it afterwards.

use mdst_graph::NodeId;

/// What the driver knows right after the construction phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConstructionEvent {
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Number of edges of the input graph.
    pub m: usize,
    /// Maximum degree `k` of the freshly built initial spanning tree.
    pub initial_degree: usize,
    /// Messages spent by the construction (`0` for centralized seeds and
    /// for pre-built trees handed in via `Pipeline::initial_tree`).
    pub construction_messages: u64,
}

/// One improvement round (a `SearchDegree` broadcast and everything it
/// triggered).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundEvent {
    /// Round number, starting at 1.
    pub round: u32,
    /// Whether this round performed an edge exchange, when attribution is
    /// certain. On an optimal run the protocol serialises one exchange per
    /// round with a final non-improving round, so every round is attributed
    /// (`Some`). On degraded runs (faults, event-limit aborts) the per-round
    /// attribution is unknown and this is `None`; the total exchange count
    /// still arrives through [`ExchangeEvent`]s.
    pub improved: Option<bool>,
}

/// One edge exchange (a Delete/Add pair lowering the targeted degree).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeEvent {
    /// Exchange number, starting at 1. On an optimal run this equals the
    /// round that performed it; on degraded runs it is only the ordinal.
    pub index: u32,
}

/// One injected fault observed during the improvement phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultEvent {
    /// A node crash-stopped. `time` is the simulated clock when a trace was
    /// recorded, `None` otherwise.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Simulated time of the crash, when known.
        time: Option<u64>,
    },
    /// A message was lost (random loss, cut link, or crashed receiver).
    /// Reported per message only when the simulator recorded a trace.
    MessageDropped {
        /// Sender of the lost message.
        from: NodeId,
        /// Intended receiver.
        to: NodeId,
        /// Simulated time of the drop.
        time: u64,
        /// Message kind label (e.g. `"BFS"`).
        message_kind: String,
    },
    /// Aggregate count of lost messages, reported when no trace was
    /// recorded (the per-message details are not known then).
    MessagesDropped {
        /// Total messages lost during the run.
        count: u64,
    },
}

/// A streaming tap on one pipeline session. See the [module docs](self) for
/// the delivery order; every method defaults to a no-op.
pub trait Observer {
    /// The construction phase finished; the improvement phase is about to
    /// start. Fired live at the phase boundary.
    fn on_construction_done(&mut self, _event: &ConstructionEvent) {}

    /// One improvement round completed.
    fn on_round(&mut self, _event: &RoundEvent) {}

    /// One edge exchange was performed.
    fn on_exchange(&mut self, _event: &ExchangeEvent) {}

    /// One injected fault was observed.
    fn on_fault(&mut self, _event: &FaultEvent) {}

    /// The session is complete; `report` is the same value `run()` returns.
    fn on_finish(&mut self, _report: &crate::driver::RunReport) {}
}

/// An [`Observer`] that counts every event it receives — handy for tests and
/// for cheap progress meters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountingObserver {
    /// `on_construction_done` calls received.
    pub constructions: usize,
    /// `on_round` calls received.
    pub rounds: usize,
    /// `on_exchange` calls received.
    pub exchanges: usize,
    /// `on_fault` calls received.
    pub faults: usize,
    /// `on_finish` calls received.
    pub finishes: usize,
}

impl Observer for CountingObserver {
    fn on_construction_done(&mut self, _event: &ConstructionEvent) {
        self.constructions += 1;
    }

    fn on_round(&mut self, _event: &RoundEvent) {
        self.rounds += 1;
    }

    fn on_exchange(&mut self, _event: &ExchangeEvent) {
        self.exchanges += 1;
    }

    fn on_fault(&mut self, _event: &FaultEvent) {
        self.faults += 1;
    }

    fn on_finish(&mut self, _report: &crate::driver::RunReport) {
        self.finishes += 1;
    }
}

/// An owned, thread-portable rendering of one observer callback — what a
/// [`ChannelObserver`] sends down its channel. Borrowed event payloads are
/// converted to owned values so the stream can outlive the session and cross
/// thread boundaries (the `scenario serve` event fabric forwards these to
/// watching clients as JSONL).
#[derive(Debug, Clone, PartialEq)]
pub enum SessionEvent {
    /// Mirror of [`Observer::on_construction_done`].
    Construction(ConstructionEvent),
    /// Mirror of [`Observer::on_round`].
    Round(RoundEvent),
    /// Mirror of [`Observer::on_exchange`].
    Exchange(ExchangeEvent),
    /// Mirror of [`Observer::on_fault`].
    Fault(FaultEvent),
    /// Mirror of [`Observer::on_finish`], compacted to the summary a remote
    /// watcher needs (the full report travels separately, as the run record).
    Finish(FinishSummary),
}

/// The owned finale of a session stream: the headline numbers of the
/// [`crate::driver::RunReport`] without its trees, metrics or trace.
#[derive(Debug, Clone, PartialEq)]
pub struct FinishSummary {
    /// Stable kebab-case label of the session [`crate::driver::Outcome`].
    pub outcome: String,
    /// Improvement rounds executed.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Maximum degree of the surviving tree edges.
    pub final_degree: usize,
    /// Wall-clock milliseconds of the improvement execution.
    pub wall_ms: f64,
}

/// An [`Observer`] that forwards every event down a [`std::sync::mpsc`]
/// channel as an owned [`SessionEvent`] — the bridge from the borrow-bound
/// observer tap to anything that lives on another thread (live dashboards,
/// the `scenario serve` per-run event stream). A disconnected receiver is
/// tolerated: sends simply stop landing, the session is never disturbed.
#[derive(Debug, Clone)]
pub struct ChannelObserver {
    sink: std::sync::mpsc::Sender<SessionEvent>,
}

impl ChannelObserver {
    /// Wraps a channel sender as an observer.
    pub fn new(sink: std::sync::mpsc::Sender<SessionEvent>) -> Self {
        ChannelObserver { sink }
    }

    fn forward(&self, event: SessionEvent) {
        // A gone receiver means nobody is watching any more; that must not
        // fail the run, so the send result is deliberately dropped.
        let _ = self.sink.send(event);
    }
}

impl Observer for ChannelObserver {
    fn on_construction_done(&mut self, event: &ConstructionEvent) {
        self.forward(SessionEvent::Construction(event.clone()));
    }

    fn on_round(&mut self, event: &RoundEvent) {
        self.forward(SessionEvent::Round(*event));
    }

    fn on_exchange(&mut self, event: &ExchangeEvent) {
        self.forward(SessionEvent::Exchange(*event));
    }

    fn on_fault(&mut self, event: &FaultEvent) {
        self.forward(SessionEvent::Fault(event.clone()));
    }

    fn on_finish(&mut self, report: &crate::driver::RunReport) {
        self.forward(SessionEvent::Finish(FinishSummary {
            outcome: report.outcome.label().to_string(),
            rounds: report.rounds,
            improvements: report.improvements,
            final_degree: report.final_degree,
            wall_ms: report.wall_ms,
        }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Silent;
    impl Observer for Silent {}

    #[test]
    fn default_methods_are_no_ops() {
        // A unit observer compiles and accepts every event.
        let mut s = Silent;
        s.on_construction_done(&ConstructionEvent {
            n: 4,
            m: 3,
            initial_degree: 3,
            construction_messages: 0,
        });
        s.on_round(&RoundEvent {
            round: 1,
            improved: Some(false),
        });
        s.on_exchange(&ExchangeEvent { index: 1 });
        s.on_fault(&FaultEvent::MessagesDropped { count: 2 });
    }

    #[test]
    fn counting_observer_counts() {
        let mut c = CountingObserver::default();
        c.on_round(&RoundEvent {
            round: 1,
            improved: Some(true),
        });
        c.on_round(&RoundEvent {
            round: 2,
            improved: None,
        });
        c.on_exchange(&ExchangeEvent { index: 1 });
        c.on_fault(&FaultEvent::NodeCrashed {
            node: NodeId(3),
            time: None,
        });
        assert_eq!(c.rounds, 2);
        assert_eq!(c.exchanges, 1);
        assert_eq!(c.faults, 1);
        assert_eq!(c.finishes, 0);
    }

    #[test]
    fn channel_observer_forwards_owned_events() {
        let (tx, rx) = std::sync::mpsc::channel();
        let mut obs = ChannelObserver::new(tx);
        obs.on_round(&RoundEvent {
            round: 1,
            improved: Some(true),
        });
        obs.on_exchange(&ExchangeEvent { index: 1 });
        drop(obs);
        let events: Vec<SessionEvent> = rx.into_iter().collect();
        assert_eq!(
            events,
            vec![
                SessionEvent::Round(RoundEvent {
                    round: 1,
                    improved: Some(true),
                }),
                SessionEvent::Exchange(ExchangeEvent { index: 1 }),
            ]
        );
    }

    #[test]
    fn channel_observer_survives_a_gone_receiver() {
        let (tx, rx) = std::sync::mpsc::channel();
        drop(rx);
        let mut obs = ChannelObserver::new(tx);
        obs.on_round(&RoundEvent {
            round: 1,
            improved: None,
        }); // must not panic
    }
}
