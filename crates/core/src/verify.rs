//! Verification of protocol results.
//!
//! The correctness statement of the paper has two parts: the result is a
//! spanning tree, and it is a *Locally Optimal Tree* — no outgoing edge
//! between the fragments around the targeted maximum-degree node can lower the
//! maximum degree (Theorem 1's condition restricted to the node the algorithm
//! got stuck on). The functions here check both parts on the centralized
//! snapshot of the final tree; they are used by the integration tests, the
//! property tests and the experiment harness.

use mdst_graph::{Graph, GraphError, NodeId, RootedTree};

/// Checks that `tree` is a spanning tree of `graph` (right node set, every
/// tree edge a graph edge, connected and acyclic by construction of
/// [`RootedTree`]).
pub fn verify_spanning_tree(graph: &Graph, tree: &RootedTree) -> Result<(), GraphError> {
    tree.validate_against(graph)
}

/// Whether no admissible exchange can lower the degree of `w`.
///
/// `w`'s removal splits the tree into fragments (one per tree neighbour of
/// `w`); an admissible exchange needs a graph edge between two different
/// fragments whose endpoints both have tree degree at most `k − 2`, where `k`
/// is the maximum degree of the tree. Returns `true` when no such edge exists
/// — the paper's stopping condition for the improvement of `w`.
pub fn is_locally_optimal_for(graph: &Graph, tree: &RootedTree, w: NodeId) -> bool {
    let k = tree.max_degree();
    let fragments = tree.fragments_around(w);
    let n = tree.node_count();
    // fragment index per node; usize::MAX = the node w itself.
    let mut fragment_of = vec![usize::MAX; n];
    for (index, (_, members)) in fragments.iter().enumerate() {
        for node in members {
            fragment_of[node.index()] = index;
        }
    }
    for (a, b) in graph.edges() {
        if a == w || b == w {
            continue;
        }
        if fragment_of[a.index()] == fragment_of[b.index()] {
            continue;
        }
        if tree.degree(a) + 2 <= k && tree.degree(b) + 2 <= k {
            return false;
        }
    }
    true
}

/// The maximum-degree nodes of `tree` that are locally optimal (blocked).
pub fn blocked_max_degree_nodes(graph: &Graph, tree: &RootedTree) -> Vec<NodeId> {
    tree.max_degree_nodes()
        .into_iter()
        .filter(|&w| is_locally_optimal_for(graph, tree, w))
        .collect()
}

/// The termination certificate of the distributed algorithm: either the tree
/// already has the unimprovable degree 2 (or fewer nodes than that requires),
/// or the maximum-degree node of minimum identity — the node the final round
/// targeted — admits no improving exchange.
pub fn verify_termination_certificate(graph: &Graph, tree: &RootedTree) -> bool {
    let k = tree.max_degree();
    if k <= 2 {
        return true;
    }
    let p = tree
        .max_degree_min_id()
        .expect("a non-empty tree has a maximum-degree node");
    is_locally_optimal_for(graph, tree, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};

    #[test]
    fn star_tree_on_star_plus_path_is_not_locally_optimal() {
        let g = generators::star_with_leaf_edges(8).unwrap();
        let star = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert!(!is_locally_optimal_for(&g, &star, NodeId(0)));
        assert!(!verify_termination_certificate(&g, &star));
    }

    #[test]
    fn star_tree_on_pure_star_is_locally_optimal() {
        let g = generators::star(8).unwrap();
        let star = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        assert!(is_locally_optimal_for(&g, &star, NodeId(0)));
        assert!(verify_termination_certificate(&g, &star));
        assert_eq!(blocked_max_degree_nodes(&g, &star), vec![NodeId(0)]);
    }

    #[test]
    fn chains_are_always_certified() {
        let g = generators::cycle(10).unwrap();
        let chain = algorithms::dfs_tree(&g, NodeId(0)).unwrap();
        assert!(verify_termination_certificate(&g, &chain));
    }

    #[test]
    fn paper_local_search_results_are_certified() {
        for seed in 0..6u64 {
            let g = generators::gnp_connected(22, 0.2, seed).unwrap();
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let out = crate::sequential::paper_local_search(&g, &initial).unwrap();
            assert!(
                verify_termination_certificate(&g, &out.tree),
                "seed {seed}: result of the paper rule must be blocked"
            );
        }
    }

    #[test]
    fn verify_spanning_tree_rejects_foreign_trees() {
        let g = generators::path(5).unwrap();
        let other = generators::star(5).unwrap();
        let t = algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        assert!(verify_spanning_tree(&g, &t).is_err());
        let ok = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        assert!(verify_spanning_tree(&g, &ok).is_ok());
    }
}
