//! Verification of protocol results.
//!
//! The correctness statement of the paper has two parts: the result is a
//! spanning tree, and it is a *Locally Optimal Tree* — no outgoing edge
//! between the fragments around the targeted maximum-degree node can lower the
//! maximum degree (Theorem 1's condition restricted to the node the algorithm
//! got stuck on). The functions here check both parts on the centralized
//! snapshot of the final tree; they are used by the integration tests, the
//! property tests and the experiment harness.

use mdst_graph::{Graph, GraphBuilder, GraphError, NodeId, RootedTree};
use serde::Serialize;
use std::collections::BTreeSet;

/// Checks that `tree` is a spanning tree of `graph` (right node set, every
/// tree edge a graph edge, connected and acyclic by construction of
/// [`RootedTree`]).
pub fn verify_spanning_tree(graph: &Graph, tree: &RootedTree) -> Result<(), GraphError> {
    tree.validate_against(graph)
}

/// Whether no admissible exchange can lower the degree of `w`.
///
/// `w`'s removal splits the tree into fragments (one per tree neighbour of
/// `w`); an admissible exchange needs a graph edge between two different
/// fragments whose endpoints both have tree degree at most `k − 2`, where `k`
/// is the maximum degree of the tree. Returns `true` when no such edge exists
/// — the paper's stopping condition for the improvement of `w`.
pub fn is_locally_optimal_for(graph: &Graph, tree: &RootedTree, w: NodeId) -> bool {
    let k = tree.max_degree();
    let fragments = tree.fragments_around(w);
    let n = tree.node_count();
    // fragment index per node; usize::MAX = the node w itself.
    let mut fragment_of = vec![usize::MAX; n];
    for (index, (_, members)) in fragments.iter().enumerate() {
        for node in members {
            fragment_of[node.index()] = index;
        }
    }
    for (a, b) in graph.edges() {
        if a == w || b == w {
            continue;
        }
        if fragment_of[a.index()] == fragment_of[b.index()] {
            continue;
        }
        if tree.degree(a) + 2 <= k && tree.degree(b) + 2 <= k {
            return false;
        }
    }
    true
}

/// The maximum-degree nodes of `tree` that are locally optimal (blocked).
pub fn blocked_max_degree_nodes(graph: &Graph, tree: &RootedTree) -> Vec<NodeId> {
    tree.max_degree_nodes()
        .into_iter()
        .filter(|&w| is_locally_optimal_for(graph, tree, w))
        .collect()
}

/// The termination certificate of the distributed algorithm: either the tree
/// already has the unimprovable degree 2 (or fewer nodes than that requires),
/// or the maximum-degree node of minimum identity — the node the final round
/// targeted — admits no improving exchange.
pub fn verify_termination_certificate(graph: &Graph, tree: &RootedTree) -> bool {
    let k = tree.max_degree();
    if k <= 2 {
        return true;
    }
    let p = tree
        .max_degree_min_id()
        .expect("a non-empty tree has a maximum-degree node");
    is_locally_optimal_for(graph, tree, p)
}

/// The invariant-relevant slice of one node's protocol state, as captured
/// *between* atomic event handlers (message deliveries). Produced by
/// `MdstNode::snapshot`; consumed by [`check_safety_invariants`] and the
/// `mdst-check` model checker at every explored state, not only at
/// quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeSnapshot {
    /// Current parent pointer (`None` = this node believes it is the root).
    pub parent: Option<NodeId>,
    /// Highest round number the node has joined.
    pub round: u32,
    /// Fragment identity `(coordinator, fragment root)` the node last
    /// entered, if any (stale values from finished rounds persist until the
    /// next `SearchInit` resets them — the consistency check below is
    /// therefore scoped per round).
    pub fragment: Option<(NodeId, NodeId)>,
    /// Whether the node currently acts as the round coordinator `p`.
    pub coordinator: bool,
    /// Whether the node has received the final `Stop`.
    pub done: bool,
}

/// A violated safety invariant of the distributed protocol, with enough
/// context to point at the offending nodes. These are *global* invariants
/// that hold at every reachable state under any message schedule — including
/// mid-round transients (path reversal in progress, half-installed
/// exchanges) and crash/loss faults — so a model checker may assert them
/// after every single delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation {
    /// A node lists itself as its own parent.
    SelfParent {
        /// The offending node.
        node: NodeId,
    },
    /// A parent pointer refers to a node that is not a graph neighbour, so
    /// the claimed tree edge does not exist in the network.
    ParentNotNeighbor {
        /// The claiming node.
        node: NodeId,
        /// Its (non-adjacent) claimed parent.
        parent: NodeId,
    },
    /// The undirected parent edges contain a cycle. Antiparallel pairs
    /// (`u.parent = v` and `v.parent = u`, the legitimate transient of a
    /// path reversal in flight) count as a single undirected edge, so this
    /// only fires on genuine structural cycles.
    ParentCycle {
        /// The edge whose insertion closed the cycle.
        edge: (NodeId, NodeId),
    },
    /// More than one node believes it is the root (`parent = None`). The
    /// root moves by first re-pointing itself and only then handing the
    /// rootship over in a message, so at every instant there is at most one
    /// root — even while `MoveRoot` is in flight (then there are zero).
    MultipleRoots {
        /// Two distinct claimed roots.
        roots: (NodeId, NodeId),
    },
    /// More than one node acts as coordinator at the same instant.
    MultipleCoordinators {
        /// Two distinct claimed coordinators.
        coordinators: (NodeId, NodeId),
    },
    /// Two nodes that joined the same round disagree on who that round's
    /// coordinator is (fragment identities are inconsistent).
    FragmentMismatch {
        /// The round in question.
        round: u32,
        /// A node and the coordinator it recorded.
        a: (NodeId, NodeId),
        /// Another same-round node with a different coordinator.
        b: (NodeId, NodeId),
    },
}

impl InvariantViolation {
    /// Stable kebab-case identifier of the violated rule, used by report
    /// files and counterexample artifacts.
    pub fn rule(&self) -> &'static str {
        match self {
            InvariantViolation::SelfParent { .. } => "self-parent",
            InvariantViolation::ParentNotNeighbor { .. } => "parent-not-neighbor",
            InvariantViolation::ParentCycle { .. } => "parent-cycle",
            InvariantViolation::MultipleRoots { .. } => "multiple-roots",
            InvariantViolation::MultipleCoordinators { .. } => "multiple-coordinators",
            InvariantViolation::FragmentMismatch { .. } => "fragment-mismatch",
        }
    }
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InvariantViolation::SelfParent { node } => {
                write!(f, "{node} lists itself as its own parent")
            }
            InvariantViolation::ParentNotNeighbor { node, parent } => {
                write!(f, "{node} claims parent {parent}, which is not a neighbour")
            }
            InvariantViolation::ParentCycle { edge: (u, v) } => {
                write!(f, "parent edge {u}-{v} closes a cycle")
            }
            InvariantViolation::MultipleRoots { roots: (a, b) } => {
                write!(f, "both {a} and {b} believe they are the root")
            }
            InvariantViolation::MultipleCoordinators {
                coordinators: (a, b),
            } => {
                write!(f, "both {a} and {b} act as coordinator")
            }
            InvariantViolation::FragmentMismatch { round, a, b } => {
                write!(
                    f,
                    "round {round}: {} records coordinator {} but {} records {}",
                    a.0, a.1, b.0, b.1
                )
            }
        }
    }
}

impl std::error::Error for InvariantViolation {}

/// Checks the protocol's global safety invariants on a mid-execution
/// snapshot of every node's state (crashed nodes included — crash-stop
/// freezes a node's state, it does not corrupt it):
///
/// 1. no node is its own parent;
/// 2. every parent pointer follows an existing graph edge;
/// 3. the undirected parent edges form a forest (an exchange deletes one
///    tree edge and adds one graph edge between two fragments, so the edge
///    set stays acyclic through every intermediate delivery);
/// 4. at most one node believes it is the root;
/// 5. at most one node acts as coordinator;
/// 6. all nodes that joined the same round agree on that round's
///    coordinator.
///
/// Unlike [`verify_spanning_tree`] this is callable at *every* reachable
/// state, not only at quiescence — it is the per-state oracle of the
/// `mdst-check` model checker.
pub fn check_safety_invariants(
    graph: &Graph,
    snapshots: &[NodeSnapshot],
) -> Result<(), InvariantViolation> {
    let n = graph.node_count();
    assert_eq!(snapshots.len(), n, "one snapshot per node");

    // 1 + 2: parent pointers are real graph edges.
    for (u, snap) in snapshots.iter().enumerate() {
        let u = NodeId::new(u);
        if let Some(p) = snap.parent {
            if p == u {
                return Err(InvariantViolation::SelfParent { node: u });
            }
            if !graph.has_edge(u, p) {
                return Err(InvariantViolation::ParentNotNeighbor { node: u, parent: p });
            }
        }
    }

    // 3: the undirected parent-edge set is a forest. Antiparallel pairs are
    // deduplicated first, so a path reversal in flight is not a 2-cycle.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (u, snap) in snapshots.iter().enumerate() {
        if let Some(p) = snap.parent {
            edges.insert((u.min(p.index()), u.max(p.index())));
        }
    }
    let mut dsu = mdst_graph::algorithms::DisjointSet::new(n);
    for &(a, b) in &edges {
        if !dsu.union(a, b) {
            return Err(InvariantViolation::ParentCycle {
                edge: (NodeId::new(a), NodeId::new(b)),
            });
        }
    }

    // 4 + 5: at most one root, at most one coordinator.
    let mut root = None;
    let mut coordinator = None;
    for (u, snap) in snapshots.iter().enumerate() {
        let u = NodeId::new(u);
        if snap.parent.is_none() {
            if let Some(r) = root {
                return Err(InvariantViolation::MultipleRoots { roots: (r, u) });
            }
            root = Some(u);
        }
        if snap.coordinator {
            if let Some(c) = coordinator {
                return Err(InvariantViolation::MultipleCoordinators {
                    coordinators: (c, u),
                });
            }
            coordinator = Some(u);
        }
    }

    // 6: per-round fragment identities agree on the coordinator.
    let mut per_round: std::collections::BTreeMap<u32, (NodeId, NodeId)> =
        std::collections::BTreeMap::new();
    for (u, snap) in snapshots.iter().enumerate() {
        let u = NodeId::new(u);
        if let Some((coord, _)) = snap.fragment {
            match per_round.get(&snap.round) {
                None => {
                    per_round.insert(snap.round, (u, coord));
                }
                Some(&(first, recorded)) if recorded != coord => {
                    return Err(InvariantViolation::FragmentMismatch {
                        round: snap.round,
                        a: (first, recorded),
                        b: (u, coord),
                    });
                }
                Some(_) => {}
            }
        }
    }
    Ok(())
}

/// What is left of a (possibly partial) tree snapshot on the live part of a
/// network after a faulty run. Produced by [`survivor_report`]; consumed by
/// the scenario runner's outcome taxonomy.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SurvivorReport {
    /// Nodes that did not crash.
    pub live_nodes: usize,
    /// Members of the *survivor component*: the largest connected component
    /// of the graph induced on the live nodes (lowest-id component on ties),
    /// sorted by id. Equals all nodes when nothing crashed.
    pub component: Vec<NodeId>,
    /// Distinct snapshot tree edges with both endpoints in the survivor
    /// component (and actually present in the graph).
    pub tree_edges: usize,
    /// Whether those edges form a spanning tree of the survivor component.
    pub spans_component: bool,
    /// Maximum number of snapshot tree edges incident to any one node of the
    /// survivor component (`0` when the component retains no tree edge).
    pub max_degree: usize,
}

impl SurvivorReport {
    /// Size of the survivor component.
    pub fn component_size(&self) -> usize {
        self.component.len()
    }

    /// The survivor component as its own [`Graph`] (nodes renumbered in
    /// sorted-id order), for computing degree bounds on what is left of the
    /// network.
    pub fn component_subgraph(&self, graph: &Graph) -> Graph {
        let mut index_of = vec![usize::MAX; graph.node_count()];
        for (i, node) in self.component.iter().enumerate() {
            index_of[node.index()] = i;
        }
        let mut builder = GraphBuilder::new(self.component.len().max(1));
        for (u, v) in graph.edges() {
            let (iu, iv) = (index_of[u.index()], index_of[v.index()]);
            if iu != usize::MAX && iv != usize::MAX {
                builder
                    .add_edge_idempotent(NodeId::new(iu), NodeId::new(iv))
                    .expect("renumbered endpoints are in range and distinct");
            }
        }
        builder.build()
    }
}

/// Checks a parent-pointer snapshot of the improved tree against the live
/// part of the network: which nodes survive, whether the surviving tree edges
/// still span the survivor component, and what degree the snapshot attains
/// there. With no crashes this degenerates to "is `parents` a spanning tree
/// of `graph`" plus its maximum degree.
///
/// `parents` is indexed by node; `parents[u] = Some(p)` is the snapshot tree
/// edge `{u, p}`. Edges touching a crashed endpoint, absent from the graph,
/// or equal to a self loop are ignored (a stale pointer must not crash the
/// verifier — classifying stale state is its whole purpose).
pub fn survivor_report(
    graph: &Graph,
    parents: &[Option<NodeId>],
    crashed: &[bool],
) -> SurvivorReport {
    let n = graph.node_count();
    assert_eq!(parents.len(), n, "one parent slot per node");
    assert_eq!(crashed.len(), n, "one crash flag per node");
    let live = |u: NodeId| u.index() < n && !crashed[u.index()];
    let live_nodes = crashed.iter().filter(|&&dead| !dead).count();

    // Survivor component: BFS over the live-induced subgraph from each
    // unvisited live node, keeping the largest component (first one on ties,
    // i.e. the one with the smallest id — deterministic).
    let mut visited = vec![false; n];
    let mut component: Vec<NodeId> = Vec::new();
    for start in 0..n {
        if visited[start] || crashed[start] {
            continue;
        }
        let mut queue = vec![NodeId::new(start)];
        visited[start] = true;
        let mut members = Vec::new();
        while let Some(u) = queue.pop() {
            members.push(u);
            for v in graph.neighbors(u) {
                if !visited[v.index()] && !crashed[v.index()] {
                    visited[v.index()] = true;
                    queue.push(v);
                }
            }
        }
        if members.len() > component.len() {
            component = members;
        }
    }
    component.sort_unstable();

    let mut in_component = vec![false; n];
    for node in &component {
        in_component[node.index()] = true;
    }

    // Distinct snapshot tree edges inside the component.
    let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();
    for (u, parent) in parents.iter().enumerate() {
        let Some(p) = *parent else { continue };
        let u = NodeId::new(u);
        if u == p || !live(u) || !live(p) {
            continue;
        }
        if !in_component[u.index()] || !in_component[p.index()] {
            continue;
        }
        if !graph.has_edge(u, p) {
            continue;
        }
        let (a, b) = (u.index().min(p.index()), u.index().max(p.index()));
        edges.insert((a, b));
    }

    // Spanning check: |edges| = |component| - 1 and the edges connect the
    // component (acyclicity then follows from the count).
    let mut degree = vec![0usize; n];
    let mut dsu = mdst_graph::algorithms::DisjointSet::new(n);
    let mut united = 0usize;
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
        if dsu.union(a, b) {
            united += 1;
        }
    }
    let first = component.first().copied();
    let spans_component = !component.is_empty()
        && edges.len() == component.len() - 1
        && united == edges.len()
        && component
            .iter()
            .all(|&u| dsu.same(u.index(), first.expect("non-empty").index()));
    let max_degree = component
        .iter()
        .map(|&u| degree[u.index()])
        .max()
        .unwrap_or(0);

    SurvivorReport {
        live_nodes,
        component,
        tree_edges: edges.len(),
        spans_component,
        max_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::{algorithms, generators};

    #[test]
    fn star_tree_on_star_plus_path_is_not_locally_optimal() {
        let g = generators::star_with_leaf_edges(8).unwrap();
        let star = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        assert!(!is_locally_optimal_for(&g, &star, NodeId(0)));
        assert!(!verify_termination_certificate(&g, &star));
    }

    #[test]
    fn star_tree_on_pure_star_is_locally_optimal() {
        let g = generators::star(8).unwrap();
        let star = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        assert!(is_locally_optimal_for(&g, &star, NodeId(0)));
        assert!(verify_termination_certificate(&g, &star));
        assert_eq!(blocked_max_degree_nodes(&g, &star), vec![NodeId(0)]);
    }

    #[test]
    fn chains_are_always_certified() {
        let g = generators::cycle(10).unwrap();
        let chain = algorithms::dfs_tree(&g, NodeId(0)).unwrap();
        assert!(verify_termination_certificate(&g, &chain));
    }

    #[test]
    fn paper_local_search_results_are_certified() {
        for seed in 0..6u64 {
            let g = generators::gnp_connected(22, 0.2, seed).unwrap();
            let initial = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let out = crate::sequential::paper_local_search(&g, &initial).unwrap();
            assert!(
                verify_termination_certificate(&g, &out.tree),
                "seed {seed}: result of the paper rule must be blocked"
            );
        }
    }

    fn parents_of(tree: &RootedTree) -> Vec<Option<NodeId>> {
        (0..tree.node_count())
            .map(|u| tree.parent(NodeId::new(u)))
            .collect()
    }

    #[test]
    fn survivor_report_with_no_crashes_is_a_plain_spanning_check() {
        let g = generators::gnp_connected(12, 0.3, 7).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let report = survivor_report(&g, &parents_of(&tree), &[false; 12]);
        assert_eq!(report.live_nodes, 12);
        assert_eq!(report.component_size(), 12);
        assert_eq!(report.tree_edges, 11);
        assert!(report.spans_component);
        assert_eq!(report.max_degree, tree.max_degree());
        let sub = report.component_subgraph(&g);
        assert_eq!(sub.node_count(), g.node_count());
        assert_eq!(sub.edge_count(), g.edge_count());
    }

    #[test]
    fn survivor_report_restricts_to_the_largest_live_component() {
        // Path 0-1-2-3-4: crashing node 2 leaves components {0,1} and {3,4};
        // the (first) largest is {0,1}. The path tree restricted to it still
        // spans it.
        let g = generators::path(5).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let mut crashed = vec![false; 5];
        crashed[2] = true;
        let report = survivor_report(&g, &parents_of(&tree), &crashed);
        assert_eq!(report.live_nodes, 4);
        assert_eq!(report.component, vec![NodeId(0), NodeId(1)]);
        assert_eq!(report.tree_edges, 1);
        assert!(report.spans_component);
        assert_eq!(report.max_degree, 1);
        let sub = report.component_subgraph(&g);
        assert_eq!(sub.node_count(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn survivor_report_detects_partial_trees() {
        // Cycle 0-1-2-3-0 with the BFS tree rooted at 0. Drop node 1's parent
        // pointer: the snapshot no longer spans the (fully live) component.
        let g = generators::cycle(4).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let mut parents = parents_of(&tree);
        let child = (1..4).find(|&u| parents[u] == Some(NodeId(0))).unwrap();
        parents[child] = None;
        let report = survivor_report(&g, &parents, &[false; 4]);
        assert!(!report.spans_component);
        assert_eq!(report.tree_edges, 2);
    }

    #[test]
    fn survivor_report_ignores_stale_pointers() {
        // Parent pointers to crashed nodes or non-edges must be skipped, not
        // trusted or panicked on.
        let g = generators::path(4).unwrap();
        let parents = vec![None, Some(NodeId(0)), Some(NodeId(0)), Some(NodeId(2))];
        // parents[2] = 0 is not an edge of the path; ignore it.
        let report = survivor_report(&g, &parents, &[false; 4]);
        assert!(!report.spans_component);
        assert_eq!(report.tree_edges, 2, "0-1 and 2-3 survive, 0-2 is bogus");
    }

    #[test]
    fn survivor_report_on_a_single_node_graph_is_trivially_spanning() {
        // One node, no edges, no parent pointer: the snapshot spans the
        // (singleton) component with zero tree edges and degree zero.
        let g = mdst_graph::GraphBuilder::new(1).build();
        let report = survivor_report(&g, &[None], &[false]);
        assert_eq!(report.live_nodes, 1);
        assert_eq!(report.component, vec![NodeId(0)]);
        assert_eq!(report.tree_edges, 0);
        assert!(report.spans_component);
        assert_eq!(report.max_degree, 0);
        let sub = report.component_subgraph(&g);
        assert_eq!(sub.node_count(), 1);
        assert_eq!(sub.edge_count(), 0);
        // And the same singleton after the rest of the graph crashed.
        let g = generators::path(3).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let report = survivor_report(&g, &parents_of(&tree), &[false, true, true]);
        assert_eq!(report.component, vec![NodeId(0)]);
        assert!(report.spans_component);
        assert_eq!(report.max_degree, 0);
    }

    #[test]
    fn survivor_report_with_every_node_crashed_is_empty_not_a_panic() {
        let g = generators::cycle(4).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let report = survivor_report(&g, &parents_of(&tree), &[true; 4]);
        assert_eq!(report.live_nodes, 0);
        assert!(report.component.is_empty());
        assert_eq!(report.component_size(), 0);
        assert_eq!(report.tree_edges, 0);
        assert!(
            !report.spans_component,
            "an empty component spans nothing — the outcome taxonomy relies \
             on this reading as a degraded run"
        );
        assert_eq!(report.max_degree, 0);
        // The subgraph of nothing is the minimal one-node placeholder the
        // builder produces; it must not panic.
        let sub = report.component_subgraph(&g);
        assert_eq!(sub.edge_count(), 0);
    }

    #[test]
    fn survivor_component_ties_resolve_to_the_lowest_id_component() {
        // Cycle 0..5 with nodes 0 and 3 crashed leaves two live components of
        // equal size, {1,2} and {4,5}; the report must pick {1,2}
        // deterministically (first seen = lowest id).
        let g = generators::cycle(6).unwrap();
        let tree = algorithms::bfs_tree(&g, NodeId(1)).unwrap();
        let mut crashed = vec![false; 6];
        crashed[0] = true;
        crashed[3] = true;
        let report = survivor_report(&g, &parents_of(&tree), &crashed);
        assert_eq!(report.live_nodes, 4);
        assert_eq!(report.component, vec![NodeId(1), NodeId(2)]);
        // The cycle tree rooted at 1 keeps the edge 1-2, so the snapshot
        // still spans the chosen component.
        assert!(report.spans_component);
        assert_eq!(report.tree_edges, 1);
        assert_eq!(report.max_degree, 1);
    }

    fn snap(parent: Option<usize>) -> NodeSnapshot {
        NodeSnapshot {
            parent: parent.map(NodeId::new),
            round: 1,
            fragment: None,
            coordinator: false,
            done: false,
        }
    }

    #[test]
    fn safety_invariants_accept_a_plain_tree_snapshot() {
        let g = generators::cycle(4).unwrap();
        let snaps = vec![snap(None), snap(Some(0)), snap(Some(1)), snap(Some(2))];
        assert!(check_safety_invariants(&g, &snaps).is_ok());
    }

    #[test]
    fn safety_invariants_tolerate_a_path_reversal_in_flight() {
        // MoveRoot transient: 0.parent = 1 while 1.parent = 0 still. The
        // antiparallel pair is one undirected edge, not a 2-cycle; note there
        // is no root at this instant, which is also legal.
        let g = generators::path(3).unwrap();
        let snaps = vec![snap(Some(1)), snap(Some(0)), snap(Some(1))];
        assert!(check_safety_invariants(&g, &snaps).is_ok());
    }

    #[test]
    fn safety_invariants_reject_structural_defects() {
        let g = generators::cycle(4).unwrap();
        // Self parent.
        let snaps = vec![snap(Some(0)), snap(Some(0)), snap(Some(1)), snap(Some(2))];
        assert_eq!(
            check_safety_invariants(&g, &snaps).unwrap_err().rule(),
            "self-parent"
        );
        // Parent along a non-edge (0-2 is a chord the 4-cycle lacks).
        let snaps = vec![snap(None), snap(Some(0)), snap(Some(0)), snap(Some(2))];
        assert_eq!(
            check_safety_invariants(&g, &snaps).unwrap_err().rule(),
            "parent-not-neighbor"
        );
        // A genuine directed cycle through three nodes.
        let snaps = vec![snap(Some(1)), snap(Some(2)), snap(Some(3)), snap(Some(0))];
        let err = check_safety_invariants(&g, &snaps).unwrap_err();
        assert_eq!(err.rule(), "parent-cycle");
        assert!(err.to_string().contains("closes a cycle"));
        // Two roots.
        let snaps = vec![snap(None), snap(None), snap(Some(1)), snap(Some(2))];
        assert_eq!(
            check_safety_invariants(&g, &snaps).unwrap_err().rule(),
            "multiple-roots"
        );
    }

    #[test]
    fn safety_invariants_scope_fragment_agreement_per_round() {
        let g = generators::cycle(4).unwrap();
        let frag = |parent: Option<usize>, round, coord: usize| NodeSnapshot {
            parent: parent.map(NodeId::new),
            round,
            fragment: Some((NodeId::new(coord), NodeId(9))),
            coordinator: false,
            done: false,
        };
        // Same round, different coordinators: inconsistent.
        let snaps = vec![
            snap(None),
            frag(Some(0), 2, 0),
            frag(Some(1), 2, 3),
            snap(Some(2)),
        ];
        let err = check_safety_invariants(&g, &snaps).unwrap_err();
        assert_eq!(err.rule(), "fragment-mismatch");
        // Different rounds may disagree (stale identity from a finished round).
        let snaps = vec![
            snap(None),
            frag(Some(0), 1, 0),
            frag(Some(1), 2, 3),
            snap(Some(2)),
        ];
        assert!(check_safety_invariants(&g, &snaps).is_ok());
        // Two simultaneous coordinators are flagged.
        let coord = |parent: Option<usize>| NodeSnapshot {
            coordinator: true,
            ..snap(parent)
        };
        let snaps = vec![snap(None), coord(Some(0)), coord(Some(1)), snap(Some(2))];
        assert_eq!(
            check_safety_invariants(&g, &snaps).unwrap_err().rule(),
            "multiple-coordinators"
        );
    }

    #[test]
    fn mdst_node_snapshots_feed_the_safety_checker() {
        use crate::distributed::MdstNode;
        let g = generators::star_with_leaf_edges(6).unwrap();
        let tree = algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
        let nodes = MdstNode::from_tree(&tree);
        let snaps: Vec<NodeSnapshot> = nodes.iter().map(|p| p.snapshot()).collect();
        assert!(check_safety_invariants(&g, &snaps).is_ok());
        assert_eq!(snaps[0].parent, None);
        assert!(!snaps[0].done);
    }

    #[test]
    fn verify_spanning_tree_rejects_foreign_trees() {
        let g = generators::path(5).unwrap();
        let other = generators::star(5).unwrap();
        let t = algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        assert!(verify_spanning_tree(&g, &t).is_err());
        let ok = algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        assert!(verify_spanning_tree(&g, &ok).is_ok());
    }
}
