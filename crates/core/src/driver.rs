//! Experiment pipeline: initial tree → distributed improvement → report.
//!
//! The driver mirrors the way the paper composes its system: a spanning-tree
//! construction runs first (any of the `mdst-spanning` substrates), then the
//! improvement protocol runs on the resulting tree. The construction always
//! executes on the discrete-event simulator (its metrics are the paper's
//! construction-cost tables); the improvement phase runs on whichever
//! [`ExecutorKind`] backend the session selects — the simulator, the
//! thread-per-node runtime or the work-stealing pool — through the uniform
//! `mdst_netsim::exec::Executor` surface.
//!
//! ## One session API
//!
//! [`Pipeline`] is the single entry point: a builder over a shared
//! [`Arc<Graph>`] whose [`Pipeline::run`] returns one [`RunReport`] whatever
//! happens during the run. Faults, event-limit aborts and partial trees are
//! *outcomes* ([`Outcome`]), not errors; [`PipelineError`] is reserved for
//! runs that could not be set up or executed at all. Progress can be
//! streamed to any number of [`Observer`]s registered on the builder.
//!
//! ```
//! use mdst_core::{Outcome, Pipeline};
//! use mdst_graph::generators;
//! use std::sync::Arc;
//!
//! let graph = Arc::new(generators::star_with_leaf_edges(10).unwrap());
//! let report = Pipeline::on(&graph).run().unwrap();
//! assert_eq!(report.outcome, Outcome::Optimal);
//! assert!(report.final_degree <= 3);
//! ```
//!
//! The pre-redesign entry points (`run_pipeline`, `run_pipeline_with_faults`
//! and their twin report structs) survive as thin `#[deprecated]` wrappers
//! with bit-identical results, proven by the `api_equivalence` property
//! tests.

use crate::distributed::MdstNode;
use crate::observer::{ConstructionEvent, ExchangeEvent, FaultEvent, Observer, RoundEvent};
use crate::verify::{survivor_report, SurvivorReport};
use mdst_graph::Graph;
use mdst_graph::{GraphError, NodeId, RootedTree};
use mdst_netsim::{
    CancelToken, ExecConfig, ExecStatus, ExecutorKind, FaultPlan, Metrics, SimConfig, SimError,
    TraceEventKind,
};
use mdst_spanning::{build_initial_tree, collect_tree, InitialTreeKind};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Error of a pipeline session that could not be set up or executed. Results
/// that merely *degrade* (faults, event-limit aborts, partial trees) are not
/// errors — they come back as [`Outcome`]s in the [`RunReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// Building or validating a graph structure failed (bad initial tree,
    /// inconsistent final snapshot on a reliable network, …).
    Graph(GraphError),
    /// The executor backend rejected the configuration or failed to run
    /// (e.g. asking the pool for simulated delays or fault injection).
    Exec(SimError),
    /// Strict entry points only ([`run_distributed_mdst_on`]): the protocol
    /// hit the event cap before quiescing.
    EventLimit {
        /// The configured cap.
        max_events: u64,
    },
    /// Strict entry points only: the network quiesced but some node never
    /// received `Stop`.
    Unterminated,
    /// Strict entry points only: the network quiesced with every node
    /// terminated, yet the snapshot did not form a spanning tree.
    PartialSnapshot,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Graph(e) => write!(f, "{e}"),
            PipelineError::Exec(e) => write!(f, "{e}"),
            PipelineError::EventLimit { max_events } => {
                write!(
                    f,
                    "protocol did not quiesce: event limit of {max_events} exceeded"
                )
            }
            PipelineError::Unterminated => write!(f, "a node never received Stop"),
            PipelineError::PartialSnapshot => {
                write!(f, "the final snapshot does not span the graph")
            }
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Graph(e) => Some(e),
            PipelineError::Exec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for PipelineError {
    fn from(e: GraphError) -> Self {
        PipelineError::Graph(e)
    }
}

impl From<SimError> for PipelineError {
    fn from(e: SimError) -> Self {
        PipelineError::Exec(e)
    }
}

impl PipelineError {
    /// The [`GraphError`] the pre-redesign API reported for this failure.
    /// Used by the deprecated wrappers to stay bit-identical with their
    /// historical behaviour (executor errors were stringly mapped onto
    /// `GraphError::InvalidParameter`, protocol misbehaviour onto
    /// `GraphError::NotASpanningTree`).
    pub fn into_graph_error(self) -> GraphError {
        match self {
            PipelineError::Graph(e) => e,
            PipelineError::Exec(e) => GraphError::InvalidParameter(e.to_string()),
            // The protocol-misbehaviour variants keep their historical
            // NotASpanningTree spelling; the message is the single copy in
            // the Display impl above.
            err @ (PipelineError::EventLimit { .. }
            | PipelineError::Unterminated
            | PipelineError::PartialSnapshot) => GraphError::NotASpanningTree(err.to_string()),
        }
    }
}

/// How a pipeline session ended — the one outcome taxonomy every layer
/// (driver, campaign runner, dashboards) shares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// The network quiesced, every live node terminated, and the final tree
    /// spans the survivor component (the whole graph when nothing crashed):
    /// the protocol delivered its Locally Optimal Tree.
    Optimal,
    /// The network quiesced but the snapshot is stale or partial: some live
    /// node never terminated, or the surviving tree edges do not span the
    /// survivor component. Only faults can cause this.
    PartialTree,
    /// The event cap was hit before quiescence (livelock guard).
    EventLimitAborted,
    /// A [`CancelToken`] registered via [`Pipeline::cancel`] was raised
    /// mid-run (operator cancellation or a scheduler's early-abort policy);
    /// the backend wound down cooperatively and the report carries the
    /// partial snapshot. A decision, not an error.
    Aborted,
}

impl Outcome {
    /// Stable kebab-case label used in reports and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::Optimal => "optimal",
            Outcome::PartialTree => "partial-tree",
            Outcome::EventLimitAborted => "event-limit-aborted",
            Outcome::Aborted => "aborted",
        }
    }

    /// Whether the run delivered a correct tree on the survivor component.
    pub fn is_optimal(self) -> bool {
        self == Outcome::Optimal
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

// Hand-written so serialized reports carry the same stable kebab-case labels
// as every other artifact (CLI output, scenario JSON/CSV) instead of the
// derive's PascalCase variant names.
impl Serialize for Outcome {
    fn to_value(&self) -> serde::Value {
        serde::Value::String(self.label().to_string())
    }
}

impl Deserialize for Outcome {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v.as_str() {
            Some("optimal") => Ok(Outcome::Optimal),
            Some("partial-tree") => Ok(Outcome::PartialTree),
            Some("event-limit-aborted") => Ok(Outcome::EventLimitAborted),
            Some("aborted") => Ok(Outcome::Aborted),
            _ => Err(serde::Error::custom("expected an outcome label")),
        }
    }
}

/// Result of running the distributed improvement on one initial tree (the
/// improvement-only slice of a [`RunReport`], used by benches that construct
/// their initial trees explicitly).
#[must_use = "an MdstRun carries the improved tree and metrics; inspect or propagate it"]
#[derive(Debug, Clone, Serialize)]
pub struct MdstRun {
    /// The improved spanning tree.
    pub final_tree: RootedTree,
    /// Metrics of the improvement protocol (messages, bits, causal time).
    pub metrics: Metrics,
    /// Number of rounds executed (SearchDegree broadcasts), including the
    /// final round that detects local optimality.
    pub rounds: u32,
    /// Number of edge exchanges performed (one per improving round).
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution, as reported by
    /// the backend that ran it.
    pub wall_ms: f64,
    /// Which backend executed the improvement.
    pub executor: ExecutorKind,
}

/// Configuration of a full pipeline run. [`Pipeline`] is the ergonomic way
/// to assemble one; the struct remains public so campaign specs can resolve
/// into it and hand it over wholesale via [`Pipeline::config`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Which initial spanning-tree construction to use.
    pub initial: InitialTreeKind,
    /// The designated root / initiator of the construction.
    pub root: NodeId,
    /// Simulator configuration (delays, start schedule, event cap, faults)
    /// used for the improvement protocol (and for the construction when it
    /// is a distributed one). Backends other than the simulator honor only
    /// the backend-agnostic parts and reject the rest (see
    /// `mdst_netsim::exec`).
    pub sim: SimConfig,
    /// Which backend executes the improvement protocol.
    pub executor: ExecutorKind,
    /// Worker threads for the pool backend (`0` = auto); ignored by the
    /// other backends.
    pub workers: usize,
    /// Mailbox messages the pool backend drains per scheduling quantum
    /// (`0` = the backend default); ignored by the other backends.
    pub batch: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            initial: InitialTreeKind::GreedyHub,
            root: NodeId(0),
            sim: SimConfig::default(),
            executor: ExecutorKind::Sim,
            workers: 0,
            batch: 0,
        }
    }
}

impl PipelineConfig {
    /// The uniform executor configuration of the improvement phase.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            sim: self.sim.clone(),
            workers: self.workers,
            batch: self.batch,
        }
    }
}

/// The unified report of one pipeline session, whatever happened during it.
///
/// Replaces the pre-redesign `PipelineReport` / `FaultPipelineReport` pair:
/// a fault-free optimal run, a degraded faulty run and an event-limit abort
/// all come back through this one shape, distinguished by [`Outcome`]. The
/// survivor grading is always computed (for fault-free runs it degenerates
/// to the whole graph), so consumers never branch on which of two report
/// types they got.
#[must_use = "a RunReport carries the outcome of the session; inspect or propagate it"]
#[derive(Debug, Clone, Serialize)]
pub struct RunReport {
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Number of edges of the input graph.
    pub m: usize,
    /// The initial spanning tree handed to the improvement protocol.
    pub initial_tree: RootedTree,
    /// Maximum degree `k` of the initial tree.
    pub initial_degree: usize,
    /// How the session ended.
    pub outcome: Outcome,
    /// The improved tree, present exactly when the run quiesced with every
    /// node terminated (a node that crashed *after* receiving `Stop` still
    /// counts) and the snapshot validated as a spanning tree of the whole
    /// graph — i.e. when the protocol finished everywhere before any
    /// disruption mattered. Degraded runs carry their grading in
    /// [`RunReport::survivor`] instead; note that with a post-termination
    /// crash the tree can be present while [`RunReport::outcome`] grades the
    /// survivor component as `PartialTree`.
    pub final_tree: Option<RootedTree>,
    /// Maximum degree `k*` attained on the survivor component. On a
    /// fault-free run this equals `final_tree.max_degree()`; after a
    /// post-termination crash the survivor grading excludes edges incident
    /// to the crashed node, so it can be lower than the degree of the
    /// (still present) full tree.
    pub final_degree: usize,
    /// The snapshot graded on the survivor component — always computed; on a
    /// fault-free run the component is the whole graph.
    pub survivor: SurvivorReport,
    /// Whether every node's protocol reported local termination (crashed
    /// nodes included — a node that crashed after `Stop` still counts).
    pub all_terminated: bool,
    /// Whether every *live* (non-crashed) node reported local termination.
    pub all_live_terminated: bool,
    /// Metrics of the initial construction (`None` for centralized seeds
    /// and pre-built trees).
    pub construction_metrics: Option<Metrics>,
    /// Metrics of the improvement protocol (including `dropped_messages`
    /// and `crashed_nodes`).
    pub improvement_metrics: Metrics,
    /// Rounds executed by the improvement protocol.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution, as reported by
    /// the backend that ran it.
    pub wall_ms: f64,
    /// OS threads the backend used: 1 for the simulator, `n` for the
    /// thread-per-node runtime, the pool size for the pool.
    pub workers: usize,
    /// Which backend executed the improvement.
    pub executor: ExecutorKind,
    /// Message trace of the improvement phase, recorded by every backend
    /// when `sim.record_trace` is set (the simulator stamps simulated time;
    /// the threaded and pool runtimes stamp an atomic global order) and the
    /// disabled (empty) recorder otherwise. Feed it to the `mdst-analysis`
    /// happens-before auditor to check causal delivery and FIFO order.
    pub trace: mdst_netsim::TraceRecorder,
}

impl RunReport {
    /// `k − k*`: the quantity the paper's complexity bounds are expressed in.
    pub fn degree_drop(&self) -> usize {
        self.initial_degree.saturating_sub(self.final_degree)
    }

    /// The paper's message budget for this run, `(k − k* + 1) · m`, against
    /// which the measured message count is compared in experiment E1.
    pub fn paper_message_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.m as u64
    }

    /// The paper's time budget for this run, `(k − k* + 1) · n` (experiment E2).
    pub fn paper_time_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.n as u64
    }

    /// The improved tree of a run that terminated everywhere with a
    /// validated full-graph spanning tree.
    ///
    /// # Panics
    ///
    /// Panics when [`RunReport::final_tree`] is `None`. Match on that field
    /// instead when faults are in play: under a crash plan even an
    /// [`Outcome::Optimal`] run (survivors quiesced, terminated and
    /// spanning) may carry no full-graph tree, so `outcome` alone is not a
    /// sufficient guard.
    pub fn tree(&self) -> &RootedTree {
        self.final_tree
            .as_ref()
            .expect("run did not produce a validated spanning tree; check RunReport::outcome")
    }
}

/// Builder for one pipeline session on a shared topology.
///
/// ```
/// use mdst_core::{Outcome, Pipeline};
/// use mdst_graph::{generators, NodeId};
/// use mdst_netsim::ExecutorKind;
/// use mdst_spanning::InitialTreeKind;
/// use std::sync::Arc;
///
/// let graph = Arc::new(generators::gnp_connected(24, 0.2, 7).unwrap());
/// let report = Pipeline::on(&graph)
///     .initial(InitialTreeKind::Bfs)
///     .root(NodeId(0))
///     .executor(ExecutorKind::Pool)
///     .workers(4)
///     .run()
///     .unwrap();
/// assert_eq!(report.outcome, Outcome::Optimal);
/// ```
///
/// The lifetime parameter ties registered [`Observer`]s to the builder; a
/// session without observers is `Pipeline<'static>`.
#[must_use = "a Pipeline session does nothing until .run() is called"]
pub struct Pipeline<'obs> {
    graph: Arc<Graph>,
    config: PipelineConfig,
    // Kept outside `config` so a later `.sim(..)` / `.config(..)` cannot
    // silently discard a registered plan; merged in `run()`.
    faults: Option<FaultPlan>,
    seed_tree: Option<RootedTree>,
    observers: Vec<&'obs mut dyn Observer>,
    cancel: Option<CancelToken>,
}

impl<'obs> Pipeline<'obs> {
    /// Starts a session on `graph` with the default configuration
    /// (greedy-hub initial tree, root 0, simulator backend, no faults).
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn on(graph: &Arc<Graph>) -> Self {
        Pipeline {
            graph: Arc::clone(graph),
            config: PipelineConfig::default(),
            faults: None,
            seed_tree: None,
            observers: Vec::new(),
            cancel: None,
        }
    }

    /// Replaces the whole configuration (the campaign runner resolves its
    /// specs into a [`PipelineConfig`] and hands it over here).
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn config(mut self, config: PipelineConfig) -> Self {
        self.config = config;
        self
    }

    /// Which initial spanning-tree construction to use.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn initial(mut self, kind: InitialTreeKind) -> Self {
        self.config.initial = kind;
        self
    }

    /// Seeds the improvement with an explicit pre-built initial tree instead
    /// of a construction; it must be a spanning tree of the session graph.
    /// Construction metrics are `None` for such runs.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn initial_tree(mut self, tree: RootedTree) -> Self {
        self.seed_tree = Some(tree);
        self
    }

    /// The designated root / initiator of the construction.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn root(mut self, root: NodeId) -> Self {
        self.config.root = root;
        self
    }

    /// Which backend executes the improvement protocol.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn executor(mut self, kind: ExecutorKind) -> Self {
        self.config.executor = kind;
        self
    }

    /// Worker threads for the pool backend (`0` = auto).
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Mailbox messages the pool backend drains per scheduling quantum
    /// (`0` = the backend default). Larger batches amortise per-quantum
    /// locking; smaller batches interleave nodes more fairly. Ignored by the
    /// other backends.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn batch(mut self, batch: usize) -> Self {
        self.config.batch = batch;
        self
    }

    /// Replaces the simulator configuration (delays, start schedule, event
    /// cap, traces, faults). A plan registered via [`Pipeline::faults`]
    /// wins over the plan inside this configuration, whatever the builder
    /// call order.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.config.sim = sim;
        self
    }

    /// Injects a fault plan into the improvement phase (simulator backend
    /// only; the concurrent backends reject non-benign plans). Overrides
    /// the plan carried by [`Pipeline::sim`] / [`Pipeline::config`]
    /// regardless of call order.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Registers a streaming observer. May be called repeatedly; events are
    /// delivered to every registered observer in registration order.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn observer(mut self, observer: &'obs mut dyn Observer) -> Self {
        self.observers.push(observer);
        self
    }

    /// Registers a cooperative cancellation token: raising it from another
    /// thread while [`Pipeline::run`] executes winds the backend down at its
    /// next safe point and grades the run [`Outcome::Aborted`] (with the
    /// partial snapshot in the report) instead of erroring. This is how the
    /// `scenario serve` early-abort watchdog reins in over-budget runs.
    #[must_use = "builder methods return the updated session; chain or reassign it"]
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Runs the session: builds (or validates) the initial tree, executes
    /// the improvement protocol on the configured backend, grades the result
    /// and streams events to the registered observers.
    ///
    /// Degraded runs are [`Outcome`]s, not errors; `Err` means the session
    /// could not be set up or executed (invalid tree, backend rejection, or
    /// an inconsistent final snapshot on a run with no observed faults —
    /// the latter would be a protocol bug, never a legitimate result).
    #[must_use = "the session result reports how the run ended; dropping it hides failures"]
    pub fn run(self) -> Result<RunReport, PipelineError> {
        let Pipeline {
            graph,
            mut config,
            faults,
            seed_tree,
            mut observers,
            cancel,
        } = self;
        if let Some(plan) = faults {
            config.sim.faults = plan;
        }

        // Phase 1: construction (always fault-free, always simulated).
        let (initial_tree, construction_metrics) = match seed_tree {
            Some(tree) => (tree, None),
            None => build_initial_tree(&graph, config.root, config.initial)?,
        };
        initial_tree.validate_against(&graph)?;
        let construction = ConstructionEvent {
            n: graph.node_count(),
            m: graph.edge_count(),
            initial_degree: initial_tree.max_degree(),
            construction_messages: construction_metrics
                .as_ref()
                .map(|m| m.messages_total)
                .unwrap_or(0),
        };
        for obs in observers.iter_mut() {
            obs.on_construction_done(&construction);
        }

        // Phase 2: the improvement protocol on the configured backend.
        let nodes = MdstNode::from_tree(&initial_tree);
        let run = config.executor.run_with_cancel(
            &graph,
            |id, _| nodes[id.index()].clone(),
            &config.exec_config(),
            &cancel.unwrap_or_default(),
        )?;

        // Grading: always on the survivor component, which is the whole
        // graph whenever nothing crashed.
        let quiesced = run.status == ExecStatus::Quiesced;
        let all_terminated = run.all_terminated();
        let all_live_terminated = run.all_live_terminated();
        let parents: Vec<Option<NodeId>> = run.nodes.iter().map(|p| p.parent()).collect();
        let survivor = survivor_report(&graph, &parents, &run.crashed);
        let outcome = match run.status {
            ExecStatus::Cancelled => Outcome::Aborted,
            ExecStatus::EventLimitExceeded => Outcome::EventLimitAborted,
            ExecStatus::Quiesced if all_live_terminated && survivor.spans_component => {
                Outcome::Optimal
            }
            ExecStatus::Quiesced => Outcome::PartialTree,
        };

        let nothing_crashed = run.crashed.iter().all(|&dead| !dead);
        let final_tree = if quiesced && all_terminated {
            match collect_tree(&run.nodes).and_then(|t| t.validate_against(&graph).map(|()| t)) {
                Ok(tree) => Some(tree),
                // On a run with no observed faults the protocol guarantees a
                // collectable spanning tree; failing here is a bug, not an
                // outcome. With drops or crashes in play a stale snapshot is
                // a result.
                Err(e) if run.metrics.dropped_messages == 0 && nothing_crashed => {
                    return Err(PipelineError::Graph(e))
                }
                Err(_) => None,
            }
        } else {
            None
        };

        let rounds = run.nodes.iter().map(|p| p.round()).max().unwrap_or(0);
        let improvements = run.nodes.iter().map(|p| p.improvements_made()).sum();
        let report = RunReport {
            n: graph.node_count(),
            m: graph.edge_count(),
            initial_degree: initial_tree.max_degree(),
            initial_tree,
            outcome,
            final_tree,
            final_degree: survivor.max_degree,
            survivor,
            all_terminated,
            all_live_terminated,
            construction_metrics,
            improvement_metrics: run.metrics,
            rounds,
            improvements,
            wall_ms: run.wall_time.as_secs_f64() * 1e3,
            workers: run.workers,
            executor: config.executor,
            trace: run.trace,
        };

        // Stream the improvement-phase events, replayed in causal order from
        // the uniform executor result (identical on every backend), then the
        // fault events, then the terminal report.
        if !observers.is_empty() {
            // Per-round exchange attribution is only certain on an optimal
            // run satisfying the one-exchange-per-round invariant (every
            // round but the last improved); degraded runs get unattributed
            // rounds followed by the bare exchange ordinals.
            let exact_attribution =
                report.outcome.is_optimal() && report.improvements + 1 == report.rounds;
            for round in 1..=report.rounds {
                let improved = exact_attribution.then_some(round <= report.improvements);
                let event = RoundEvent { round, improved };
                for obs in observers.iter_mut() {
                    obs.on_round(&event);
                }
                if improved == Some(true) {
                    let exchange = ExchangeEvent { index: round };
                    for obs in observers.iter_mut() {
                        obs.on_exchange(&exchange);
                    }
                }
            }
            if !exact_attribution {
                for index in 1..=report.improvements {
                    let exchange = ExchangeEvent { index };
                    for obs in observers.iter_mut() {
                        obs.on_exchange(&exchange);
                    }
                }
            }
            if report.trace.is_enabled() {
                for e in report.trace.events() {
                    let event = match e.kind {
                        TraceEventKind::Drop => FaultEvent::MessageDropped {
                            from: e.from,
                            to: e.to,
                            time: e.time,
                            message_kind: e.message_kind.to_string(),
                        },
                        TraceEventKind::Crash => FaultEvent::NodeCrashed {
                            node: e.from,
                            time: Some(e.time),
                        },
                        _ => continue,
                    };
                    for obs in observers.iter_mut() {
                        obs.on_fault(&event);
                    }
                }
            } else {
                for (index, &dead) in run.crashed.iter().enumerate() {
                    if dead {
                        let event = FaultEvent::NodeCrashed {
                            node: NodeId::new(index),
                            time: None,
                        };
                        for obs in observers.iter_mut() {
                            obs.on_fault(&event);
                        }
                    }
                }
                if report.improvement_metrics.dropped_messages > 0 {
                    let event = FaultEvent::MessagesDropped {
                        count: report.improvement_metrics.dropped_messages,
                    };
                    for obs in observers.iter_mut() {
                        obs.on_fault(&event);
                    }
                }
            }
            for obs in observers.iter_mut() {
                obs.on_finish(&report);
            }
        }
        Ok(report)
    }
}

/// Runs the distributed improvement protocol on `graph`, starting from
/// `initial` (which must be a spanning tree of `graph`), on the
/// discrete-event simulator. Shorthand for [`run_distributed_mdst_on`] with
/// [`ExecutorKind::Sim`].
#[must_use = "the run result carries the improved tree and metrics; dropping it hides failures"]
pub fn run_distributed_mdst(
    graph: &Arc<Graph>,
    initial: &RootedTree,
    sim_config: SimConfig,
) -> Result<MdstRun, PipelineError> {
    run_distributed_mdst_on(
        ExecutorKind::Sim,
        graph,
        initial,
        &ExecConfig::from_sim(sim_config),
    )
}

/// Runs the distributed improvement protocol on `graph`, starting from
/// `initial` (which must be a spanning tree of `graph`), on the chosen
/// executor backend. The protocol is message-deterministic, so every backend
/// produces the same locally optimal tree — only the scheduling (and the
/// wall time) differs.
///
/// This is the *strict* improvement-only entry used by benches and
/// cross-backend tests: anything short of a quiescent, fully terminated run
/// with a validated spanning tree is a [`PipelineError`], not an outcome.
/// Session-level code wants [`Pipeline`] instead; this entry deliberately
/// skips the session extras (initial-tree clone, survivor grading, observer
/// replay) so measured bench loops pay exactly the protocol's cost, as they
/// did before the redesign.
#[must_use = "the run result carries the improved tree and metrics; dropping it hides failures"]
pub fn run_distributed_mdst_on(
    executor: ExecutorKind,
    graph: &Arc<Graph>,
    initial: &RootedTree,
    config: &ExecConfig,
) -> Result<MdstRun, PipelineError> {
    initial.validate_against(graph)?;
    let nodes = MdstNode::from_tree(initial);
    let run = executor.run(graph, |id, _| nodes[id.index()].clone(), config)?;
    if run.status != ExecStatus::Quiesced {
        return Err(PipelineError::EventLimit {
            max_events: config.sim.max_events,
        });
    }
    if !run.all_terminated() {
        return Err(PipelineError::Unterminated);
    }
    let final_tree = collect_tree(&run.nodes)?;
    final_tree.validate_against(graph)?;
    let rounds = run.nodes.iter().map(|p| p.round()).max().unwrap_or(0);
    let improvements = run.nodes.iter().map(|p| p.improvements_made()).sum();
    Ok(MdstRun {
        final_tree,
        metrics: run.metrics,
        rounds,
        improvements,
        wall_ms: run.wall_time.as_secs_f64() * 1e3,
        executor,
    })
}

/// Enforces the strict contract of the improvement-only entry points: the
/// run must have quiesced, terminated everywhere and produced a validated
/// spanning tree.
fn strict_tree(
    mut report: RunReport,
    max_events: u64,
) -> Result<(RunReport, RootedTree), PipelineError> {
    if report.outcome == Outcome::EventLimitAborted {
        return Err(PipelineError::EventLimit { max_events });
    }
    if !report.all_terminated {
        return Err(PipelineError::Unterminated);
    }
    match report.final_tree.take() {
        Some(tree) => Ok((report, tree)),
        None => Err(PipelineError::PartialSnapshot),
    }
}

// ---------------------------------------------------------------------------
// Deprecated pre-redesign surface. Everything below is a thin wrapper over
// `Pipeline` kept for source compatibility; results are bit-identical to the
// historical implementations (proven by the `api_equivalence` proptest). The
// inner module lets the wrappers reference each other without tripping the
// deprecation lint the rest of the workspace builds with.
// ---------------------------------------------------------------------------

mod compat {
    #![allow(deprecated)]

    use super::*;

    /// Everything an experiment needs to report about one **strict**
    /// pipeline run (the historical fault-free report shape).
    #[deprecated(note = "use `Pipeline::on(..).run()` and the unified `RunReport`")]
    #[derive(Debug, Clone, Serialize)]
    pub struct PipelineReport {
        /// Number of nodes of the input graph.
        pub n: usize,
        /// Number of edges of the input graph.
        pub m: usize,
        /// The initial spanning tree handed to the improvement protocol.
        pub initial_tree: RootedTree,
        /// Maximum degree `k` of the initial tree.
        pub initial_degree: usize,
        /// The improved tree.
        pub final_tree: RootedTree,
        /// Maximum degree `k*` of the improved tree.
        pub final_degree: usize,
        /// Metrics of the initial construction (`None` for centralized seeds).
        pub construction_metrics: Option<Metrics>,
        /// Metrics of the improvement protocol.
        pub improvement_metrics: Metrics,
        /// Rounds executed by the improvement protocol.
        pub rounds: u32,
        /// Edge exchanges performed.
        pub improvements: u32,
        /// Wall-clock milliseconds of the improvement execution.
        pub wall_ms: f64,
        /// Which backend executed the improvement.
        pub executor: ExecutorKind,
    }

    impl PipelineReport {
        /// `k − k*`: the quantity the paper's complexity bounds use.
        pub fn degree_drop(&self) -> usize {
            self.initial_degree.saturating_sub(self.final_degree)
        }

        /// The paper's message budget for this run, `(k − k* + 1) · m`.
        pub fn paper_message_budget(&self) -> u64 {
            (self.degree_drop() as u64 + 1) * self.m as u64
        }

        /// The paper's time budget for this run, `(k − k* + 1) · n`.
        pub fn paper_time_budget(&self) -> u64 {
            (self.degree_drop() as u64 + 1) * self.n as u64
        }
    }

    /// How a fault-tolerant run ended (historical two-state taxonomy).
    #[deprecated(note = "use the unified `Outcome` (RunReport::outcome)")]
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
    pub enum RunStatus {
        /// The event queue drained: the network went quiescent.
        Quiesced,
        /// The event cap was hit first (livelock guard).
        EventLimitExceeded,
    }

    /// Report of one pipeline run executed under a fault plan (historical
    /// fault-tolerant report shape).
    #[deprecated(note = "use `Pipeline::on(..).run()` and the unified `RunReport`")]
    #[derive(Debug, Clone)]
    pub struct FaultPipelineReport {
        /// Number of nodes of the input graph.
        pub n: usize,
        /// Number of edges of the input graph.
        pub m: usize,
        /// Maximum degree `k` of the (fault-free) initial tree.
        pub initial_degree: usize,
        /// How the improvement run ended.
        pub status: RunStatus,
        /// Whether every non-crashed node reported local termination.
        pub all_live_terminated: bool,
        /// The snapshot graded on the survivor component.
        pub survivor: SurvivorReport,
        /// Whether the run produced a correct tree on the survivor component.
        pub correct_tree: bool,
        /// Metrics of the initial construction (`None` for centralized seeds).
        pub construction_metrics: Option<Metrics>,
        /// Metrics of the improvement protocol.
        pub improvement_metrics: Metrics,
        /// Improvement rounds observed across all nodes.
        pub rounds: u32,
        /// Edge exchanges performed.
        pub improvements: u32,
        /// Wall-clock milliseconds of the improvement execution.
        pub wall_ms: f64,
        /// Which backend executed the improvement.
        pub executor: ExecutorKind,
    }

    /// Runs the full pipeline (construction + improvement) strictly and
    /// assembles the historical experiment report.
    #[deprecated(note = "use `Pipeline::on(graph).config(config.clone()).run()`")]
    pub fn run_pipeline(
        graph: &Arc<Graph>,
        config: &PipelineConfig,
    ) -> Result<PipelineReport, GraphError> {
        let report = Pipeline::on(graph)
            .config(config.clone())
            .run()
            .map_err(PipelineError::into_graph_error)?;
        let (report, final_tree) =
            strict_tree(report, config.sim.max_events).map_err(PipelineError::into_graph_error)?;
        Ok(PipelineReport {
            n: report.n,
            m: report.m,
            initial_degree: report.initial_degree,
            final_degree: final_tree.max_degree(),
            initial_tree: report.initial_tree,
            final_tree,
            construction_metrics: report.construction_metrics,
            improvement_metrics: report.improvement_metrics,
            rounds: report.rounds,
            improvements: report.improvements,
            wall_ms: report.wall_ms,
            executor: report.executor,
        })
    }

    /// Runs the full pipeline under the fault plan of `config.sim.faults`,
    /// reporting degraded runs as results in the historical report shape.
    #[deprecated(note = "use `Pipeline::on(graph).config(config.clone()).run()`")]
    pub fn run_pipeline_with_faults(
        graph: &Arc<Graph>,
        config: &PipelineConfig,
    ) -> Result<FaultPipelineReport, GraphError> {
        let report = Pipeline::on(graph)
            .config(config.clone())
            .run()
            .map_err(PipelineError::into_graph_error)?;
        let status = match report.outcome {
            // The historical shape predates cancellation; the deprecated
            // wrappers never install a token, so `Aborted` is unreachable
            // here and folds into the only non-quiescent status available.
            Outcome::EventLimitAborted | Outcome::Aborted => RunStatus::EventLimitExceeded,
            Outcome::Optimal | Outcome::PartialTree => RunStatus::Quiesced,
        };
        Ok(FaultPipelineReport {
            n: report.n,
            m: report.m,
            initial_degree: report.initial_degree,
            status,
            all_live_terminated: report.all_live_terminated,
            survivor: report.survivor,
            correct_tree: report.outcome.is_optimal(),
            construction_metrics: report.construction_metrics,
            improvement_metrics: report.improvement_metrics,
            rounds: report.rounds,
            improvements: report.improvements,
            wall_ms: report.wall_ms,
            executor: report.executor,
        })
    }
}

#[allow(deprecated)]
pub use compat::{
    run_pipeline, run_pipeline_with_faults, FaultPipelineReport, PipelineReport, RunStatus,
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::CountingObserver;
    use mdst_graph::generators;
    use mdst_netsim::ExecutorKind;

    #[test]
    fn run_report_carries_consistent_numbers() {
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let report = Pipeline::on(&g).run().unwrap();
        assert_eq!(report.n, 12);
        assert_eq!(report.m, g.edge_count());
        assert_eq!(report.initial_degree, 11);
        assert_eq!(report.outcome, Outcome::Optimal);
        assert!(report.final_degree <= 3);
        assert_eq!(report.final_degree, report.tree().max_degree());
        assert_eq!(
            report.degree_drop(),
            report.initial_degree - report.final_degree
        );
        assert!(report.rounds as usize >= report.degree_drop());
        assert_eq!(report.improvements + 1, report.rounds);
        assert!(report.construction_metrics.is_none());
        assert!(report.improvement_metrics.messages_total > 0);
        assert!(report.all_terminated);
        assert!(report.all_live_terminated);
        assert_eq!(report.survivor.component_size(), 12);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn paper_budgets_scale_with_degree_drop() {
        let g = Arc::new(generators::complete(9).unwrap());
        let report = Pipeline::on(&g).run().unwrap();
        assert_eq!(
            report.paper_message_budget(),
            (report.degree_drop() as u64 + 1) * report.m as u64
        );
        assert_eq!(
            report.paper_time_budget(),
            (report.degree_drop() as u64 + 1) * report.n as u64
        );
    }

    #[test]
    fn distributed_initial_trees_report_construction_metrics() {
        let g = Arc::new(generators::gnp_connected(24, 0.2, 9).unwrap());
        let report = Pipeline::on(&g)
            .initial(InitialTreeKind::DistributedFlooding)
            .run()
            .unwrap();
        assert!(report.construction_metrics.unwrap().messages_total > 0);
        assert!(report.final_degree <= report.initial_degree);
    }

    #[test]
    fn heavy_loss_is_an_outcome_not_an_error() {
        // Losing 70% of all messages wrecks the improvement protocol; the
        // session must classify the wreckage instead of erroring.
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let plan = FaultPlan {
            loss: 0.7,
            seed: 5,
            ..Default::default()
        };
        let report = Pipeline::on(&g).faults(plan.clone()).run().unwrap();
        assert!(report.improvement_metrics.dropped_messages > 0);
        assert!(
            !report.outcome.is_optimal() || report.survivor.spans_component,
            "an optimal outcome implies a spanning snapshot"
        );
        // Deterministic: the same plan reproduces the same wreckage.
        let again = Pipeline::on(&g).faults(plan).run().unwrap();
        assert_eq!(
            report.improvement_metrics.dropped_messages,
            again.improvement_metrics.dropped_messages
        );
        assert_eq!(report.outcome, again.outcome);
    }

    #[test]
    fn crashes_shrink_the_survivor_component() {
        let g = Arc::new(generators::gnp_connected(16, 0.3, 9).unwrap());
        let report = Pipeline::on(&g)
            .faults(FaultPlan {
                crashes: vec![mdst_netsim::CrashAt {
                    node: NodeId(3),
                    at: 2,
                }],
                ..Default::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.improvement_metrics.crashed_nodes, 1);
        assert_eq!(report.survivor.live_nodes, 15);
        assert!(report.survivor.component_size() <= 15);
        assert!(!report.survivor.component.contains(&NodeId(3)));
        assert!(report.final_tree.is_none(), "crashed runs carry no tree");
    }

    #[test]
    fn every_executor_backend_drives_the_pipeline_to_the_same_tree() {
        // The improvement protocol is message-deterministic: whichever
        // backend schedules it, the locally optimal tree is the same.
        let g = Arc::new(generators::star_with_leaf_edges(14).unwrap());
        let reference = Pipeline::on(&g).run().unwrap();
        for executor in ExecutorKind::all() {
            let report = Pipeline::on(&g).executor(executor).run().unwrap();
            assert_eq!(report.executor, executor);
            assert_eq!(report.outcome, Outcome::Optimal, "{executor}");
            assert_eq!(report.final_degree, reference.final_degree, "{executor}");
            assert_eq!(
                report.improvement_metrics.messages_total,
                reference.improvement_metrics.messages_total,
                "{executor}"
            );
            assert!(report.tree().is_spanning_tree_of(&g), "{executor}");
            assert!(report.wall_ms >= 0.0);
        }
    }

    #[test]
    fn concurrent_backends_reject_fault_plans_loudly() {
        let g = Arc::new(generators::path(6).unwrap());
        for executor in [ExecutorKind::Threaded, ExecutorKind::Pool] {
            let err = Pipeline::on(&g)
                .executor(executor)
                .faults(FaultPlan {
                    loss: 0.2,
                    ..Default::default()
                })
                .run()
                .unwrap_err();
            assert!(
                matches!(err, PipelineError::Exec(SimError::InvalidConfig(_))),
                "{executor}: expected a typed executor rejection, got {err:?}"
            );
            assert!(
                err.to_string().contains("sim"),
                "{executor}: the error must point at the sim backend, got {err}"
            );
        }
    }

    #[test]
    fn rejects_initial_trees_that_do_not_span_the_graph() {
        let g = Arc::new(generators::path(4).unwrap());
        let other = generators::star(4).unwrap();
        let t = mdst_graph::algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        let err = run_distributed_mdst(&g, &t, SimConfig::default()).unwrap_err();
        assert!(matches!(err, PipelineError::Graph(_)), "{err:?}");
    }

    #[test]
    fn every_initial_kind_runs_through_the_pipeline() {
        let g = Arc::new(generators::gnp_connected(20, 0.25, 5).unwrap());
        for kind in InitialTreeKind::all(7) {
            let report = Pipeline::on(&g).initial(kind).run().unwrap();
            assert!(
                report.final_degree <= report.initial_degree,
                "{}",
                kind.label()
            );
            assert!(report.tree().is_spanning_tree_of(&g), "{}", kind.label());
        }
    }

    #[test]
    fn event_limit_aborts_are_outcomes() {
        let g = Arc::new(generators::complete(10).unwrap());
        let report = Pipeline::on(&g)
            .sim(SimConfig {
                max_events: 3,
                ..Default::default()
            })
            .run()
            .unwrap();
        assert_eq!(report.outcome, Outcome::EventLimitAborted);
        assert!(report.final_tree.is_none());
        // The strict improvement-only entry still errors on the same run.
        let initial = mdst_graph::algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let err = run_distributed_mdst(
            &g,
            &initial,
            SimConfig {
                max_events: 3,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, PipelineError::EventLimit { max_events: 3 });
        assert!(err.to_string().contains("event limit of 3"));
    }

    #[test]
    fn observers_stream_construction_rounds_exchanges_and_finish() {
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let mut counts = CountingObserver::default();
        let report = Pipeline::on(&g).observer(&mut counts).run().unwrap();
        assert_eq!(counts.constructions, 1);
        assert_eq!(counts.rounds as u32, report.rounds);
        assert_eq!(counts.exchanges as u32, report.improvements);
        assert_eq!(counts.faults, 0);
        assert_eq!(counts.finishes, 1);
        assert!(counts.rounds >= 1);
    }

    #[test]
    fn observers_see_fault_events_with_and_without_a_trace() {
        let g = Arc::new(generators::gnp_connected(14, 0.3, 3).unwrap());
        let plan = FaultPlan {
            loss: 0.3,
            seed: 7,
            crashes: vec![mdst_netsim::CrashAt {
                node: NodeId(2),
                at: 4,
            }],
            ..Default::default()
        };
        // Without a trace: aggregate drops + per-node crashes.
        let mut plain = CountingObserver::default();
        let report = Pipeline::on(&g)
            .faults(plan.clone())
            .observer(&mut plain)
            .run()
            .unwrap();
        let expected_plain = report.improvement_metrics.crashed_nodes as usize
            + usize::from(report.improvement_metrics.dropped_messages > 0);
        assert_eq!(plain.faults, expected_plain);
        // With a trace: one event per dropped message plus the crashes.
        let mut traced = CountingObserver::default();
        let report = Pipeline::on(&g)
            .sim(SimConfig {
                record_trace: true,
                faults: plan,
                ..Default::default()
            })
            .observer(&mut traced)
            .run()
            .unwrap();
        assert_eq!(
            traced.faults as u64,
            report.improvement_metrics.dropped_messages + report.improvement_metrics.crashed_nodes
        );
        assert_eq!(traced.finishes, 1);
    }

    #[test]
    fn round_attribution_is_exact_on_optimal_runs_and_withheld_on_degraded_ones() {
        #[derive(Default)]
        struct Collect {
            rounds: Vec<Option<bool>>,
            exchanges: Vec<u32>,
        }
        impl Observer for Collect {
            fn on_round(&mut self, event: &RoundEvent) {
                self.rounds.push(event.improved);
            }
            fn on_exchange(&mut self, event: &ExchangeEvent) {
                self.exchanges.push(event.index);
            }
        }

        // Optimal run: every round attributed, exchanges interleaved 1..=I.
        let g = Arc::new(generators::star_with_leaf_edges(10).unwrap());
        let mut collect = Collect::default();
        let report = Pipeline::on(&g).observer(&mut collect).run().unwrap();
        assert_eq!(report.outcome, Outcome::Optimal);
        assert_eq!(report.improvements + 1, report.rounds);
        let expected: Vec<Option<bool>> = (1..=report.rounds)
            .map(|r| Some(r <= report.improvements))
            .collect();
        assert_eq!(collect.rounds, expected);
        assert_eq!(
            collect.exchanges,
            (1..=report.improvements).collect::<Vec<_>>()
        );

        // Aborted run: attribution unknown — no fabricated `improved` flags.
        let g = Arc::new(generators::complete(10).unwrap());
        let mut collect = Collect::default();
        let report = Pipeline::on(&g)
            .sim(SimConfig {
                max_events: 3,
                ..Default::default()
            })
            .observer(&mut collect)
            .run()
            .unwrap();
        assert_eq!(report.outcome, Outcome::EventLimitAborted);
        assert_eq!(collect.rounds.len() as u32, report.rounds);
        assert!(
            collect.rounds.iter().all(Option::is_none),
            "degraded runs must not fabricate per-round attribution: {:?}",
            collect.rounds
        );
        assert_eq!(
            collect.exchanges,
            (1..=report.improvements).collect::<Vec<_>>()
        );
    }

    #[test]
    fn raised_cancel_token_grades_the_run_aborted() {
        let g = Arc::new(generators::gnp_connected(24, 0.3, 9).unwrap());
        let token = CancelToken::new();
        token.cancel();
        let report = Pipeline::on(&g).cancel(token).run().unwrap();
        assert_eq!(report.outcome, Outcome::Aborted);
        assert_eq!(report.outcome.label(), "aborted");
        assert!(report.final_tree.is_none(), "partial snapshot, no tree");
        // An inert token leaves the session untouched.
        let report = Pipeline::on(&g).cancel(CancelToken::new()).run().unwrap();
        assert_eq!(report.outcome, Outcome::Optimal);
    }

    #[test]
    fn multiple_observers_all_receive_the_stream() {
        let g = Arc::new(generators::wheel(10).unwrap());
        let mut a = CountingObserver::default();
        let mut b = CountingObserver::default();
        let _report = Pipeline::on(&g)
            .observer(&mut a)
            .observer(&mut b)
            .run()
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.finishes, 1);
    }

    #[test]
    fn outcome_serializes_as_its_stable_label() {
        for outcome in [
            Outcome::Optimal,
            Outcome::PartialTree,
            Outcome::EventLimitAborted,
            Outcome::Aborted,
        ] {
            let v = outcome.to_value();
            assert_eq!(v.as_str(), Some(outcome.label()));
            assert_eq!(Outcome::from_value(&v).unwrap(), outcome);
        }
        let bad = serde::Value::String("quantum".to_string());
        assert!(Outcome::from_value(&bad).is_err());
    }

    #[test]
    fn fault_plans_survive_any_builder_call_order() {
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let plan = FaultPlan {
            loss: 0.7,
            seed: 5,
            ..Default::default()
        };
        // `.sim()` after `.faults()` must not discard the registered plan.
        let report = Pipeline::on(&g)
            .faults(plan.clone())
            .sim(SimConfig::default())
            .run()
            .unwrap();
        assert!(
            report.improvement_metrics.dropped_messages > 0,
            "the fault plan was silently dropped by a later .sim() call"
        );
        // Same for `.config()`.
        let report = Pipeline::on(&g)
            .faults(plan)
            .config(PipelineConfig::default())
            .run()
            .unwrap();
        assert!(report.improvement_metrics.dropped_messages > 0);
    }

    #[test]
    fn explicit_initial_trees_seed_the_session() {
        let g = Arc::new(generators::gnp_connected(18, 0.25, 11).unwrap());
        let initial = mdst_graph::algorithms::bfs_tree(&g, NodeId(0)).unwrap();
        let report = Pipeline::on(&g)
            .initial_tree(initial.clone())
            .run()
            .unwrap();
        assert_eq!(report.initial_tree, initial);
        assert!(report.construction_metrics.is_none());
        assert!(report.final_degree <= initial.max_degree());
    }

    // ---- deprecated wrapper equivalence (spot checks; the exhaustive
    // ---- property test lives in tests/api_equivalence.rs) ----

    #[test]
    #[allow(deprecated)]
    fn benign_fault_wrapper_matches_the_strict_wrapper() {
        let g = Arc::new(generators::gnp_connected(18, 0.25, 3).unwrap());
        let config = PipelineConfig::default();
        let strict = run_pipeline(&g, &config).unwrap();
        let faulty = run_pipeline_with_faults(&g, &config).unwrap();
        assert_eq!(faulty.status, RunStatus::Quiesced);
        assert!(faulty.all_live_terminated);
        assert!(faulty.correct_tree);
        assert_eq!(faulty.survivor.live_nodes, g.node_count());
        assert_eq!(faulty.survivor.component_size(), g.node_count());
        assert_eq!(faulty.survivor.max_degree, strict.final_degree);
        assert_eq!(faulty.initial_degree, strict.initial_degree);
        assert_eq!(faulty.improvement_metrics, strict.improvement_metrics);
        assert_eq!(faulty.rounds, strict.rounds);
        assert_eq!(faulty.improvements, strict.improvements);
        assert_eq!(faulty.improvement_metrics.dropped_messages, 0);
        assert_eq!(faulty.improvement_metrics.crashed_nodes, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn fault_wrapper_runs_on_every_backend_under_benign_plans() {
        let g = Arc::new(generators::gnp_connected(16, 0.3, 2).unwrap());
        for executor in ExecutorKind::all() {
            let config = PipelineConfig {
                executor,
                ..Default::default()
            };
            let report = run_pipeline_with_faults(&g, &config).unwrap();
            assert_eq!(report.status, RunStatus::Quiesced, "{executor}");
            assert!(report.correct_tree, "{executor}");
            assert_eq!(report.executor, executor);
            assert_eq!(report.survivor.component_size(), 16, "{executor}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn strict_wrapper_reports_historical_error_strings() {
        let g = Arc::new(generators::complete(10).unwrap());
        let config = PipelineConfig {
            sim: SimConfig {
                max_events: 3,
                ..Default::default()
            },
            ..Default::default()
        };
        let err = run_pipeline(&g, &config).unwrap_err();
        assert_eq!(
            err,
            GraphError::NotASpanningTree(
                "protocol did not quiesce: event limit of 3 exceeded".to_string()
            )
        );
        // Executor rejections keep the historical stringly mapping. (Traces
        // are recorded on every backend nowadays, so the rejection probe is a
        // simulated delay model, which the pool genuinely cannot honour.)
        let config = PipelineConfig {
            executor: ExecutorKind::Pool,
            sim: SimConfig {
                delay: mdst_netsim::DelayModel::UniformRandom {
                    min: 1,
                    max: 4,
                    seed: 7,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let err = run_pipeline(&g, &config).unwrap_err();
        assert!(matches!(err, GraphError::InvalidParameter(_)), "{err:?}");
    }
}
