//! Experiment pipeline: initial tree → distributed improvement → report.
//!
//! The driver mirrors the way the paper composes its system: a spanning-tree
//! construction runs first (any of the `mdst-spanning` substrates), then the
//! improvement protocol runs on the resulting tree. The construction always
//! executes on the discrete-event simulator (its metrics are the paper's
//! construction-cost tables); the improvement phase runs on whichever
//! [`ExecutorKind`] backend the [`PipelineConfig`] selects — the simulator,
//! the thread-per-node runtime or the work-stealing pool — through the
//! uniform `mdst_netsim::exec::Executor` surface. Metrics are reported
//! separately and combined, so every experiment table can show construction
//! cost and improvement cost side by side.

use crate::distributed::MdstNode;
use mdst_graph::Graph;
use mdst_graph::{GraphError, NodeId, RootedTree};
use mdst_netsim::{ExecConfig, ExecStatus, ExecutorKind, Metrics, SimConfig};
use mdst_spanning::{build_initial_tree, collect_tree, InitialTreeKind};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Result of running the distributed improvement on one initial tree.
#[derive(Debug, Clone, Serialize)]
pub struct MdstRun {
    /// The improved spanning tree.
    pub final_tree: RootedTree,
    /// Metrics of the improvement protocol (messages, bits, causal time).
    pub metrics: Metrics,
    /// Number of rounds executed (SearchDegree broadcasts), including the
    /// final round that detects local optimality.
    pub rounds: u32,
    /// Number of edge exchanges performed (one per improving round).
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution, as reported by
    /// the backend that ran it.
    pub wall_ms: f64,
    /// Which backend executed the improvement.
    pub executor: ExecutorKind,
}

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Which initial spanning-tree construction to use.
    pub initial: InitialTreeKind,
    /// The designated root / initiator of the construction.
    pub root: NodeId,
    /// Simulator configuration (delays, start schedule, event cap) used for
    /// the improvement protocol (and for the construction when it is a
    /// distributed one). Backends other than the simulator honor only the
    /// backend-agnostic parts and reject the rest (see
    /// `mdst_netsim::exec`).
    pub sim: SimConfig,
    /// Which backend executes the improvement protocol.
    pub executor: ExecutorKind,
    /// Worker threads for the pool backend (`0` = auto); ignored by the
    /// other backends.
    pub workers: usize,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            initial: InitialTreeKind::GreedyHub,
            root: NodeId(0),
            sim: SimConfig::default(),
            executor: ExecutorKind::Sim,
            workers: 0,
        }
    }
}

impl PipelineConfig {
    /// The uniform executor configuration of the improvement phase.
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig {
            sim: self.sim.clone(),
            workers: self.workers,
        }
    }
}

/// Everything an experiment needs to report about one pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Number of edges of the input graph.
    pub m: usize,
    /// The initial spanning tree handed to the improvement protocol.
    pub initial_tree: RootedTree,
    /// Maximum degree `k` of the initial tree.
    pub initial_degree: usize,
    /// The improved tree.
    pub final_tree: RootedTree,
    /// Maximum degree `k*` of the improved tree (the Locally Optimal Tree).
    pub final_degree: usize,
    /// Metrics of the initial construction (`None` for centralized seeds).
    pub construction_metrics: Option<Metrics>,
    /// Metrics of the improvement protocol.
    pub improvement_metrics: Metrics,
    /// Rounds executed by the improvement protocol.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution, as reported by
    /// the backend that ran it.
    pub wall_ms: f64,
    /// Which backend executed the improvement.
    pub executor: ExecutorKind,
}

impl PipelineReport {
    /// `k − k*`: the quantity the paper's complexity bounds are expressed in.
    pub fn degree_drop(&self) -> usize {
        self.initial_degree.saturating_sub(self.final_degree)
    }

    /// The paper's message budget for this run, `(k − k* + 1) · m`, against
    /// which the measured message count is compared in experiment E1.
    pub fn paper_message_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.m as u64
    }

    /// The paper's time budget for this run, `(k − k* + 1) · n` (experiment E2).
    pub fn paper_time_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.n as u64
    }
}

/// Runs the distributed improvement protocol on `graph`, starting from
/// `initial` (which must be a spanning tree of `graph`), on the
/// discrete-event simulator. Shorthand for [`run_distributed_mdst_on`] with
/// [`ExecutorKind::Sim`].
pub fn run_distributed_mdst(
    graph: &Arc<Graph>,
    initial: &RootedTree,
    sim_config: SimConfig,
) -> Result<MdstRun, GraphError> {
    run_distributed_mdst_on(
        ExecutorKind::Sim,
        graph,
        initial,
        &ExecConfig::from_sim(sim_config),
    )
}

/// Runs the distributed improvement protocol on `graph`, starting from
/// `initial` (which must be a spanning tree of `graph`), on the chosen
/// executor backend. The protocol is message-deterministic, so every backend
/// produces the same locally optimal tree — only the scheduling (and the
/// wall time) differs.
pub fn run_distributed_mdst_on(
    executor: ExecutorKind,
    graph: &Arc<Graph>,
    initial: &RootedTree,
    config: &ExecConfig,
) -> Result<MdstRun, GraphError> {
    initial.validate_against(graph)?;
    let nodes = MdstNode::from_tree(initial);
    let run = executor
        .run(graph, |id, _| nodes[id.index()].clone(), config)
        .map_err(|e| GraphError::InvalidParameter(e.to_string()))?;
    if run.status != ExecStatus::Quiesced {
        return Err(GraphError::NotASpanningTree(format!(
            "protocol did not quiesce: event limit of {} exceeded",
            config.sim.max_events
        )));
    }
    if !run.all_terminated() {
        return Err(GraphError::NotASpanningTree(
            "a node never received Stop".to_string(),
        ));
    }
    let final_tree = collect_tree(&run.nodes)?;
    final_tree.validate_against(graph)?;
    let rounds = run.nodes.iter().map(|p| p.round()).max().unwrap_or(0);
    let improvements = run.nodes.iter().map(|p| p.improvements_made()).sum();
    Ok(MdstRun {
        final_tree,
        metrics: run.metrics,
        rounds,
        improvements,
        wall_ms: run.wall_time.as_secs_f64() * 1e3,
        executor,
    })
}

/// How a fault-tolerant run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunStatus {
    /// The event queue drained: the network went quiescent.
    Quiesced,
    /// The event cap was hit first (livelock guard).
    EventLimitExceeded,
}

/// Report of one pipeline run executed under a [`mdst_netsim::FaultPlan`] —
/// the fault-tolerant sibling of [`PipelineReport`]. Instead of insisting on
/// a globally valid spanning tree (impossible once nodes crash or Stop
/// messages are lost), it snapshots the per-node parent pointers and grades
/// them on the *survivor component* via [`crate::verify::survivor_report`].
///
/// Faults apply to the improvement protocol only; the initial tree is built
/// fault-free, so the report isolates the robustness of the improvement.
#[derive(Debug, Clone)]
pub struct FaultPipelineReport {
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Number of edges of the input graph.
    pub m: usize,
    /// Maximum degree `k` of the (fault-free) initial tree.
    pub initial_degree: usize,
    /// How the improvement run ended.
    pub status: RunStatus,
    /// Whether every non-crashed node reported local termination.
    pub all_live_terminated: bool,
    /// The snapshot graded on the survivor component.
    pub survivor: crate::verify::SurvivorReport,
    /// Whether the run produced a *correct tree*: it quiesced, every live
    /// node terminated, and the snapshot spans the survivor component.
    pub correct_tree: bool,
    /// Metrics of the initial construction (`None` for centralized seeds).
    pub construction_metrics: Option<Metrics>,
    /// Metrics of the improvement protocol (including `dropped_messages` and
    /// `crashed_nodes`).
    pub improvement_metrics: Metrics,
    /// Improvement rounds observed across all nodes.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
    /// Wall-clock milliseconds of the improvement execution, as reported by
    /// the backend that ran it.
    pub wall_ms: f64,
    /// Which backend executed the improvement.
    pub executor: ExecutorKind,
}

/// Runs the full pipeline under the fault plan of `config.sim.faults`.
///
/// Unlike [`run_pipeline`], a run that fails to terminate cleanly is not an
/// error: event-limit aborts and stale/partial final trees are *outcomes*,
/// reported through [`FaultPipelineReport`]. Under a benign plan a quiescent
/// run yields `correct_tree = true` with exactly the numbers
/// [`run_pipeline`] would report.
pub fn run_pipeline_with_faults(
    graph: &Arc<Graph>,
    config: &PipelineConfig,
) -> Result<FaultPipelineReport, GraphError> {
    let (initial_tree, construction_metrics) =
        build_initial_tree(graph, config.root, config.initial)?;
    initial_tree.validate_against(graph)?;
    let nodes = MdstNode::from_tree(&initial_tree);
    let run = config
        .executor
        .run(
            graph,
            |id, _| nodes[id.index()].clone(),
            &config.exec_config(),
        )
        .map_err(|e| GraphError::InvalidParameter(e.to_string()))?;
    let status = match run.status {
        ExecStatus::Quiesced => RunStatus::Quiesced,
        ExecStatus::EventLimitExceeded => RunStatus::EventLimitExceeded,
    };
    let all_live_terminated = run.all_live_terminated();
    let parents: Vec<Option<NodeId>> = run.nodes.iter().map(|p| p.parent()).collect();
    let survivor = crate::verify::survivor_report(graph, &parents, &run.crashed);
    let correct_tree =
        status == RunStatus::Quiesced && all_live_terminated && survivor.spans_component;
    let rounds = run.nodes.iter().map(|p| p.round()).max().unwrap_or(0);
    let improvements = run.nodes.iter().map(|p| p.improvements_made()).sum();
    Ok(FaultPipelineReport {
        n: graph.node_count(),
        m: graph.edge_count(),
        initial_degree: initial_tree.max_degree(),
        status,
        all_live_terminated,
        survivor,
        correct_tree,
        construction_metrics,
        improvement_metrics: run.metrics,
        rounds,
        improvements,
        wall_ms: run.wall_time.as_secs_f64() * 1e3,
        executor: config.executor,
    })
}

/// Runs the full pipeline (construction + improvement) and assembles the
/// experiment report.
pub fn run_pipeline(
    graph: &Arc<Graph>,
    config: &PipelineConfig,
) -> Result<PipelineReport, GraphError> {
    let (initial_tree, construction_metrics) =
        build_initial_tree(graph, config.root, config.initial)?;
    let run =
        run_distributed_mdst_on(config.executor, graph, &initial_tree, &config.exec_config())?;
    Ok(PipelineReport {
        n: graph.node_count(),
        m: graph.edge_count(),
        initial_degree: initial_tree.max_degree(),
        final_degree: run.final_tree.max_degree(),
        initial_tree,
        final_tree: run.final_tree,
        construction_metrics,
        improvement_metrics: run.metrics,
        rounds: run.rounds,
        improvements: run.improvements,
        wall_ms: run.wall_ms,
        executor: run.executor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;
    use mdst_netsim::ExecutorKind;

    #[test]
    fn pipeline_report_carries_consistent_numbers() {
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let report = run_pipeline(&g, &PipelineConfig::default()).unwrap();
        assert_eq!(report.n, 12);
        assert_eq!(report.m, g.edge_count());
        assert_eq!(report.initial_degree, 11);
        assert!(report.final_degree <= 3);
        assert_eq!(
            report.degree_drop(),
            report.initial_degree - report.final_degree
        );
        assert!(report.rounds as usize >= report.degree_drop());
        assert_eq!(report.improvements + 1, report.rounds);
        assert!(report.construction_metrics.is_none());
        assert!(report.improvement_metrics.messages_total > 0);
    }

    #[test]
    fn paper_budgets_scale_with_degree_drop() {
        let g = Arc::new(generators::complete(9).unwrap());
        let report = run_pipeline(&g, &PipelineConfig::default()).unwrap();
        assert_eq!(
            report.paper_message_budget(),
            (report.degree_drop() as u64 + 1) * report.m as u64
        );
        assert_eq!(
            report.paper_time_budget(),
            (report.degree_drop() as u64 + 1) * report.n as u64
        );
    }

    #[test]
    fn distributed_initial_trees_report_construction_metrics() {
        let g = Arc::new(generators::gnp_connected(24, 0.2, 9).unwrap());
        let config = PipelineConfig {
            initial: InitialTreeKind::DistributedFlooding,
            ..Default::default()
        };
        let report = run_pipeline(&g, &config).unwrap();
        assert!(report.construction_metrics.unwrap().messages_total > 0);
        assert!(report.final_degree <= report.initial_degree);
    }

    #[test]
    fn benign_fault_pipeline_matches_the_strict_pipeline() {
        let g = Arc::new(generators::gnp_connected(18, 0.25, 3).unwrap());
        let config = PipelineConfig::default();
        let strict = run_pipeline(&g, &config).unwrap();
        let faulty = run_pipeline_with_faults(&g, &config).unwrap();
        assert_eq!(faulty.status, RunStatus::Quiesced);
        assert!(faulty.all_live_terminated);
        assert!(faulty.correct_tree);
        assert_eq!(faulty.survivor.live_nodes, g.node_count());
        assert_eq!(faulty.survivor.component_size(), g.node_count());
        assert_eq!(faulty.survivor.max_degree, strict.final_degree);
        assert_eq!(faulty.initial_degree, strict.initial_degree);
        assert_eq!(faulty.improvement_metrics, strict.improvement_metrics);
        assert_eq!(faulty.rounds, strict.rounds);
        assert_eq!(faulty.improvements, strict.improvements);
        assert_eq!(faulty.improvement_metrics.dropped_messages, 0);
        assert_eq!(faulty.improvement_metrics.crashed_nodes, 0);
    }

    #[test]
    fn heavy_loss_is_an_outcome_not_an_error() {
        // Losing 70% of all messages wrecks the improvement protocol; the
        // fault pipeline must classify the wreckage instead of erroring.
        let g = Arc::new(generators::star_with_leaf_edges(12).unwrap());
        let config = PipelineConfig {
            sim: SimConfig {
                faults: mdst_netsim::FaultPlan {
                    loss: 0.7,
                    seed: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_pipeline_with_faults(&g, &config).unwrap();
        assert!(report.improvement_metrics.dropped_messages > 0);
        assert!(
            !report.correct_tree || report.survivor.spans_component,
            "a correct tree implies a spanning snapshot"
        );
        // Deterministic: the same plan reproduces the same wreckage.
        let again = run_pipeline_with_faults(&g, &config).unwrap();
        assert_eq!(
            report.improvement_metrics.dropped_messages,
            again.improvement_metrics.dropped_messages
        );
        assert_eq!(report.correct_tree, again.correct_tree);
    }

    #[test]
    fn crashes_shrink_the_survivor_component() {
        let g = Arc::new(generators::gnp_connected(16, 0.3, 9).unwrap());
        let config = PipelineConfig {
            sim: SimConfig {
                faults: mdst_netsim::FaultPlan {
                    crashes: vec![mdst_netsim::CrashAt {
                        node: NodeId(3),
                        at: 2,
                    }],
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let report = run_pipeline_with_faults(&g, &config).unwrap();
        assert_eq!(report.improvement_metrics.crashed_nodes, 1);
        assert_eq!(report.survivor.live_nodes, 15);
        assert!(report.survivor.component_size() <= 15);
        assert!(!report.survivor.component.contains(&NodeId(3)));
    }

    #[test]
    fn every_executor_backend_drives_the_pipeline_to_the_same_tree() {
        // The improvement protocol is message-deterministic: whichever
        // backend schedules it, the locally optimal tree is the same.
        let g = Arc::new(generators::star_with_leaf_edges(14).unwrap());
        let reference = run_pipeline(&g, &PipelineConfig::default()).unwrap();
        for executor in ExecutorKind::all() {
            let config = PipelineConfig {
                executor,
                ..Default::default()
            };
            let report = run_pipeline(&g, &config).unwrap();
            assert_eq!(report.executor, executor);
            assert_eq!(report.final_degree, reference.final_degree, "{executor}");
            assert_eq!(
                report.improvement_metrics.messages_total,
                reference.improvement_metrics.messages_total,
                "{executor}"
            );
            assert!(report.final_tree.is_spanning_tree_of(&g), "{executor}");
            assert!(report.wall_ms >= 0.0);
        }
    }

    #[test]
    fn fault_pipeline_runs_on_every_backend_under_benign_plans() {
        let g = Arc::new(generators::gnp_connected(16, 0.3, 2).unwrap());
        for executor in ExecutorKind::all() {
            let config = PipelineConfig {
                executor,
                ..Default::default()
            };
            let report = run_pipeline_with_faults(&g, &config).unwrap();
            assert_eq!(report.status, RunStatus::Quiesced, "{executor}");
            assert!(report.correct_tree, "{executor}");
            assert_eq!(report.executor, executor);
            assert_eq!(report.survivor.component_size(), 16, "{executor}");
        }
    }

    #[test]
    fn concurrent_backends_reject_fault_plans_loudly() {
        let g = Arc::new(generators::path(6).unwrap());
        for executor in [ExecutorKind::Threaded, ExecutorKind::Pool] {
            let config = PipelineConfig {
                executor,
                sim: SimConfig {
                    faults: mdst_netsim::FaultPlan {
                        loss: 0.2,
                        ..Default::default()
                    },
                    ..Default::default()
                },
                ..Default::default()
            };
            let err = run_pipeline_with_faults(&g, &config).unwrap_err();
            assert!(
                err.to_string().contains("sim"),
                "{executor}: the error must point at the sim backend, got {err}"
            );
        }
    }

    #[test]
    fn rejects_initial_trees_that_do_not_span_the_graph() {
        let g = Arc::new(generators::path(4).unwrap());
        let other = generators::star(4).unwrap();
        let t = mdst_graph::algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        assert!(run_distributed_mdst(&g, &t, SimConfig::default()).is_err());
    }

    #[test]
    fn every_initial_kind_runs_through_the_pipeline() {
        let g = Arc::new(generators::gnp_connected(20, 0.25, 5).unwrap());
        for kind in InitialTreeKind::all(7) {
            let config = PipelineConfig {
                initial: kind,
                ..Default::default()
            };
            let report = run_pipeline(&g, &config).unwrap();
            assert!(
                report.final_degree <= report.initial_degree,
                "{}",
                kind.label()
            );
            assert!(
                report.final_tree.is_spanning_tree_of(&g),
                "{}",
                kind.label()
            );
        }
    }
}
