//! Experiment pipeline: initial tree → distributed improvement → report.
//!
//! The driver mirrors the way the paper composes its system: a spanning-tree
//! construction runs first (any of the `mdst-spanning` substrates), then the
//! improvement protocol runs on the resulting tree. Both phases execute on the
//! discrete-event simulator and their metrics are reported separately and
//! combined, so every experiment table can show construction cost and
//! improvement cost side by side.

use crate::distributed::MdstNode;
use mdst_graph::Graph;
use mdst_graph::{GraphError, NodeId, RootedTree};
use mdst_netsim::{Metrics, SimConfig, Simulator};
use mdst_spanning::{build_initial_tree, collect_tree, InitialTreeKind};
use serde::{Deserialize, Serialize};

/// Result of running the distributed improvement on one initial tree.
#[derive(Debug, Clone, Serialize)]
pub struct MdstRun {
    /// The improved spanning tree.
    pub final_tree: RootedTree,
    /// Metrics of the improvement protocol (messages, bits, causal time).
    pub metrics: Metrics,
    /// Number of rounds executed (SearchDegree broadcasts), including the
    /// final round that detects local optimality.
    pub rounds: u32,
    /// Number of edge exchanges performed (one per improving round).
    pub improvements: u32,
}

/// Configuration of a full pipeline run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Which initial spanning-tree construction to use.
    pub initial: InitialTreeKind,
    /// The designated root / initiator of the construction.
    pub root: NodeId,
    /// Simulator configuration (delays, start schedule, event cap) used for
    /// the improvement protocol (and for the construction when it is a
    /// distributed one).
    pub sim: SimConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            initial: InitialTreeKind::GreedyHub,
            root: NodeId(0),
            sim: SimConfig::default(),
        }
    }
}

/// Everything an experiment needs to report about one pipeline run.
#[derive(Debug, Clone, Serialize)]
pub struct PipelineReport {
    /// Number of nodes of the input graph.
    pub n: usize,
    /// Number of edges of the input graph.
    pub m: usize,
    /// The initial spanning tree handed to the improvement protocol.
    pub initial_tree: RootedTree,
    /// Maximum degree `k` of the initial tree.
    pub initial_degree: usize,
    /// The improved tree.
    pub final_tree: RootedTree,
    /// Maximum degree `k*` of the improved tree (the Locally Optimal Tree).
    pub final_degree: usize,
    /// Metrics of the initial construction (`None` for centralized seeds).
    pub construction_metrics: Option<Metrics>,
    /// Metrics of the improvement protocol.
    pub improvement_metrics: Metrics,
    /// Rounds executed by the improvement protocol.
    pub rounds: u32,
    /// Edge exchanges performed.
    pub improvements: u32,
}

impl PipelineReport {
    /// `k − k*`: the quantity the paper's complexity bounds are expressed in.
    pub fn degree_drop(&self) -> usize {
        self.initial_degree.saturating_sub(self.final_degree)
    }

    /// The paper's message budget for this run, `(k − k* + 1) · m`, against
    /// which the measured message count is compared in experiment E1.
    pub fn paper_message_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.m as u64
    }

    /// The paper's time budget for this run, `(k − k* + 1) · n` (experiment E2).
    pub fn paper_time_budget(&self) -> u64 {
        (self.degree_drop() as u64 + 1) * self.n as u64
    }
}

/// Runs the distributed improvement protocol on `graph`, starting from
/// `initial` (which must be a spanning tree of `graph`).
pub fn run_distributed_mdst(
    graph: &Graph,
    initial: &RootedTree,
    sim_config: SimConfig,
) -> Result<MdstRun, GraphError> {
    initial.validate_against(graph)?;
    let nodes = MdstNode::from_tree(initial);
    let mut sim = Simulator::new(graph, sim_config, |id, _| nodes[id.index()].clone());
    sim.run()
        .map_err(|e| GraphError::NotASpanningTree(format!("protocol did not quiesce: {e}")))?;
    if !sim.all_terminated() {
        return Err(GraphError::NotASpanningTree(
            "a node never received Stop".to_string(),
        ));
    }
    let final_tree = collect_tree(sim.nodes())?;
    final_tree.validate_against(graph)?;
    let rounds = sim.nodes().iter().map(|p| p.round()).max().unwrap_or(0);
    let improvements = sim.nodes().iter().map(|p| p.improvements_made()).sum();
    let (_, metrics, _) = sim.into_parts();
    Ok(MdstRun {
        final_tree,
        metrics,
        rounds,
        improvements,
    })
}

/// Runs the full pipeline (construction + improvement) and assembles the
/// experiment report.
pub fn run_pipeline(graph: &Graph, config: &PipelineConfig) -> Result<PipelineReport, GraphError> {
    let (initial_tree, construction_metrics) =
        build_initial_tree(graph, config.root, config.initial)?;
    let run = run_distributed_mdst(graph, &initial_tree, config.sim.clone())?;
    Ok(PipelineReport {
        n: graph.node_count(),
        m: graph.edge_count(),
        initial_degree: initial_tree.max_degree(),
        final_degree: run.final_tree.max_degree(),
        initial_tree,
        final_tree: run.final_tree,
        construction_metrics,
        improvement_metrics: run.metrics,
        rounds: run.rounds,
        improvements: run.improvements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn pipeline_report_carries_consistent_numbers() {
        let g = generators::star_with_leaf_edges(12).unwrap();
        let report = run_pipeline(&g, &PipelineConfig::default()).unwrap();
        assert_eq!(report.n, 12);
        assert_eq!(report.m, g.edge_count());
        assert_eq!(report.initial_degree, 11);
        assert!(report.final_degree <= 3);
        assert_eq!(
            report.degree_drop(),
            report.initial_degree - report.final_degree
        );
        assert!(report.rounds as usize >= report.degree_drop());
        assert_eq!(report.improvements + 1, report.rounds);
        assert!(report.construction_metrics.is_none());
        assert!(report.improvement_metrics.messages_total > 0);
    }

    #[test]
    fn paper_budgets_scale_with_degree_drop() {
        let g = generators::complete(9).unwrap();
        let report = run_pipeline(&g, &PipelineConfig::default()).unwrap();
        assert_eq!(
            report.paper_message_budget(),
            (report.degree_drop() as u64 + 1) * report.m as u64
        );
        assert_eq!(
            report.paper_time_budget(),
            (report.degree_drop() as u64 + 1) * report.n as u64
        );
    }

    #[test]
    fn distributed_initial_trees_report_construction_metrics() {
        let g = generators::gnp_connected(24, 0.2, 9).unwrap();
        let config = PipelineConfig {
            initial: InitialTreeKind::DistributedFlooding,
            ..Default::default()
        };
        let report = run_pipeline(&g, &config).unwrap();
        assert!(report.construction_metrics.unwrap().messages_total > 0);
        assert!(report.final_degree <= report.initial_degree);
    }

    #[test]
    fn rejects_initial_trees_that_do_not_span_the_graph() {
        let g = generators::path(4).unwrap();
        let other = generators::star(4).unwrap();
        let t = mdst_graph::algorithms::bfs_tree(&other, NodeId(0)).unwrap();
        assert!(run_distributed_mdst(&g, &t, SimConfig::default()).is_err());
    }

    #[test]
    fn every_initial_kind_runs_through_the_pipeline() {
        let g = generators::gnp_connected(20, 0.25, 5).unwrap();
        for kind in InitialTreeKind::all(7) {
            let config = PipelineConfig {
                initial: kind,
                ..Default::default()
            };
            let report = run_pipeline(&g, &config).unwrap();
            assert!(
                report.final_degree <= report.initial_degree,
                "{}",
                kind.label()
            );
            assert!(
                report.final_tree.is_spanning_tree_of(&g),
                "{}",
                kind.label()
            );
        }
    }
}
