//! Lower bounds used by the experiment tables.
//!
//! Two kinds of bounds appear in the paper's discussion:
//!
//! * the Korach–Moran–Zaks message lower bound `Ω(n²/k)` for constructing a
//!   degree-restricted spanning tree in a complete network (\[2\] in the paper),
//!   against which §5 claims the algorithm "is not far from the optimal";
//! * implicit degree lower bounds on `Δ*` (the optimum), needed to interpret
//!   the approximation quality on instances too large for the exact solver.

use mdst_graph::algorithms::connected_components;
use mdst_graph::{Graph, NodeId};
use std::collections::BTreeSet;

/// The Korach–Moran–Zaks lower bound on the number of messages any algorithm
/// needs, in the worst case, to build a spanning tree of maximum degree at
/// most `k` in a complete network of `n` processors: `n² / k`.
pub fn kmz_message_lower_bound(n: usize, k: usize) -> f64 {
    if k == 0 {
        return f64::INFINITY;
    }
    (n as f64) * (n as f64) / (k as f64)
}

/// A combinatorial lower bound on `Δ*`, the minimum possible maximum degree of
/// a spanning tree of `graph`:
///
/// * removing any vertex `v` splits the graph into `c(v)` components, and any
///   spanning tree must connect all of them through `v`, so `Δ* ≥ c(v)`;
/// * any spanning tree on `n ≥ 3` vertices has a vertex of degree ≥ 2.
pub fn degree_lower_bound(graph: &Graph) -> usize {
    let n = graph.node_count();
    if n <= 1 {
        return 0;
    }
    if n == 2 {
        return 1;
    }
    let mut bound = 2;
    for v in graph.nodes() {
        let keep: BTreeSet<NodeId> = graph.nodes().filter(|&u| u != v).collect();
        let (without_v, _) = graph.induced_subgraph(&keep);
        let components = connected_components(&without_v).len();
        bound = bound.max(components);
    }
    bound
}

/// `⌈log₂ n⌉` (0 for `n ≤ 1`), the additive slack of the local-search degree
/// guarantee.
pub fn ceil_log2(n: usize) -> usize {
    if n <= 1 {
        0
    } else {
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }
}

/// The `O(Δ* + log n)` degree guarantee a locally optimal tree satisfies
/// (Fürer–Raghavachari's analysis of local optimality, which the paper's
/// Locally Optimal Tree inherits): `2·Δ* + ⌈log₂ n⌉`.
///
/// `Δ*` itself is NP-hard to compute, so the combinatorial
/// [`degree_lower_bound`] stands in for it; the resulting check is
/// *conservative* (never more permissive than the theorem) and is the bound
/// the scenario harness applies to every campaign run.
pub fn paper_degree_upper_bound(graph: &Graph) -> usize {
    2 * degree_lower_bound(graph) + ceil_log2(graph.node_count())
}

/// Whether a final tree degree satisfies [`paper_degree_upper_bound`].
pub fn within_paper_degree_bound(graph: &Graph, final_degree: usize) -> bool {
    final_degree <= paper_degree_upper_bound(graph)
}

/// Ratio between a measured message count and the KMZ lower bound — the
/// quantity experiment E6 tabulates on complete graphs.
pub fn kmz_ratio(measured_messages: u64, n: usize, k: usize) -> f64 {
    let lb = kmz_message_lower_bound(n, k);
    if lb == 0.0 || !lb.is_finite() {
        return f64::NAN;
    }
    measured_messages as f64 / lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_graph::generators;

    #[test]
    fn kmz_bound_shrinks_with_larger_degree_budget() {
        assert_eq!(kmz_message_lower_bound(10, 2), 50.0);
        assert_eq!(kmz_message_lower_bound(10, 5), 20.0);
        assert!(kmz_message_lower_bound(10, 0).is_infinite());
    }

    #[test]
    fn kmz_ratio_is_measured_over_bound() {
        assert!((kmz_ratio(100, 10, 2) - 2.0).abs() < 1e-12);
        assert!(kmz_ratio(100, 0, 2).is_nan());
    }

    #[test]
    fn degree_lower_bound_on_structured_graphs() {
        assert_eq!(degree_lower_bound(&generators::path(6).unwrap()), 2);
        assert_eq!(degree_lower_bound(&generators::complete(6).unwrap()), 2);
        assert_eq!(degree_lower_bound(&generators::star(7).unwrap()), 6);
        assert_eq!(
            degree_lower_bound(&generators::high_optimum(5, 2).unwrap()),
            5
        );
        assert_eq!(degree_lower_bound(&generators::path(2).unwrap()), 1);
        assert_eq!(degree_lower_bound(&mdst_graph::Graph::empty(1)), 0);
    }

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(0), 0);
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1024), 10);
    }

    #[test]
    fn paper_degree_bound_admits_the_local_search_result() {
        for seed in 0..4u64 {
            let g = std::sync::Arc::new(generators::gnp_connected(24, 0.2, seed).unwrap());
            let initial = mdst_graph::algorithms::greedy_high_degree_tree(&g, NodeId(0)).unwrap();
            let run = crate::driver::run_distributed_mdst(
                &g,
                &initial,
                mdst_netsim::SimConfig::default(),
            )
            .unwrap();
            assert!(
                within_paper_degree_bound(&g, run.final_tree.max_degree()),
                "seed {seed}: degree {} above bound {}",
                run.final_tree.max_degree(),
                paper_degree_upper_bound(&g)
            );
        }
    }

    #[test]
    fn lower_bound_never_exceeds_the_exact_optimum() {
        for seed in 0..6u64 {
            let g = generators::gnp_connected(11, 0.25, seed).unwrap();
            let lb = degree_lower_bound(&g);
            let opt = crate::sequential::exact_min_degree(&g).unwrap();
            assert!(lb <= opt, "seed {seed}: lb {lb} > opt {opt}");
        }
    }
}
