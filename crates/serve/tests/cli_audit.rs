//! End-to-end tests of the `scenario audit` CLI subcommand, run against the
//! built binary (which lives in this crate since the CLI grew the serve
//! family).

use std::process::Command;

fn scenario_bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_scenario"))
}
/// Repo-root path of the checked-in FIFO-violation fixture (tests run with
/// the crate directory as CWD).
const FIFO_FIXTURE: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../examples/traces/fifo-violation.json"
);

#[test]
fn audit_subcommand_rejects_the_fifo_violation_fixture() {
    let out = scenario_bin()
        .args(["audit", FIFO_FIXTURE])
        .output()
        .unwrap();
    assert!(!out.status.success(), "a corrupted trace must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fifo-inversion"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("happens-before"), "{stderr}");

    // JSON mode carries the same verdict machine-readably.
    let out = scenario_bin()
        .args(["audit", FIFO_FIXTURE, "--json"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let value = serde::from_json_str(&String::from_utf8_lossy(&out.stdout)).unwrap();
    let findings = value.get("findings").unwrap().as_array().unwrap();
    assert_eq!(findings.len(), 1);
    assert_eq!(
        findings[0].get("rule").unwrap().as_str(),
        Some("fifo-inversion")
    );
}

#[test]
fn audit_subcommand_passes_a_large_pool_trace() {
    use mdst_core::{Pipeline, PipelineConfig};
    use mdst_graph::generators;
    use mdst_netsim::{ExecutorKind, SimConfig};
    use serde::Serialize;
    use std::sync::Arc;

    // A 1,000-node run on the work-stealing pool: the merged multi-worker
    // trace must audit clean through the offline CLI path too.
    let graph = Arc::new(generators::random_connected(1000, 500, 99).unwrap());
    let config = PipelineConfig {
        sim: SimConfig {
            record_trace: true,
            ..Default::default()
        },
        executor: ExecutorKind::Pool,
        ..Default::default()
    };
    let report = Pipeline::on(&graph).config(config).run().unwrap();
    assert!(report.trace.is_enabled());
    assert!(!report.trace.events().is_empty());
    let path = std::env::temp_dir().join("mdst-audit-pool-trace.json");
    std::fs::write(&path, report.trace.to_value().to_json_pretty()).unwrap();

    let findings_path = std::env::temp_dir().join("mdst-audit-pool-findings.json");
    let out = scenario_bin()
        .args([
            "audit",
            path.to_str().unwrap(),
            "--quiet",
            "--out",
            findings_path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "clean pool trace must exit zero: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let doc = std::fs::read_to_string(&findings_path).unwrap();
    let value = serde::from_json_str(&doc).unwrap();
    assert_eq!(value.get("findings").unwrap().as_array().unwrap().len(), 0);
    assert!(value.get("sends").unwrap().as_u64().unwrap() > 0);
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(findings_path);
}

#[test]
fn audit_subcommand_reads_a_run_report_with_an_embedded_trace() {
    use mdst_core::{Pipeline, PipelineConfig};
    use mdst_graph::generators;
    use mdst_netsim::SimConfig;
    use serde::Serialize;
    use std::sync::Arc;

    let graph = Arc::new(generators::star_with_leaf_edges(12).unwrap());
    let config = PipelineConfig {
        sim: SimConfig {
            record_trace: true,
            ..Default::default()
        },
        ..Default::default()
    };
    let report = Pipeline::on(&graph).config(config).run().unwrap();
    let path = std::env::temp_dir().join("mdst-audit-run-report.json");
    std::fs::write(&path, report.to_value().to_json_pretty()).unwrap();
    let out = scenario_bin()
        .args(["audit", path.to_str().unwrap(), "--quiet"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn audit_subcommand_errors_cleanly_on_garbage() {
    let path = std::env::temp_dir().join("mdst-audit-garbage.json");
    std::fs::write(&path, "{\"not\": \"a trace\"}").unwrap();
    let out = scenario_bin()
        .args(["audit", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no trace found"), "{stderr}");
    let _ = std::fs::remove_file(path);
}
