//! End-to-end tests of the resident campaign service: a real server on a
//! temp Unix socket, driven entirely through [`mdst_serve::client`] — the
//! same calls the `scenario submit|watch|status|cancel|shutdown`
//! subcommands make.

use mdst_scenario::prelude::ScenarioMatrix;
use mdst_scenario::{run_campaign, RunnerConfig};
use mdst_serve::proto::Event;
use mdst_serve::{client, serve, ServeConfig, SpecFormat};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A socket path unique to this test (parallel tests in one process get
/// distinct names).
fn test_socket(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("mdst-serve-test-{}-{tag}.sock", std::process::id()))
}

/// Polls `status` until the server accepts connections.
fn wait_for_server(socket: &Path) {
    for _ in 0..1000 {
        if client::status(socket).is_ok() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never came up on {}", socket.display());
}

/// Decodes every captured JSONL line back into an [`Event`] — the stream
/// contract is that each line parses on its own.
fn parse_events(raw: &[u8]) -> Vec<Event> {
    use serde::Deserialize;
    let text = String::from_utf8(raw.to_vec()).expect("event stream is UTF-8");
    text.lines()
        .map(|line| {
            let value = serde::from_json_str(line)
                .unwrap_or_else(|e| panic!("line is not JSON ({e}): {line}"));
            Event::from_value(&value)
                .unwrap_or_else(|e| panic!("line is not an Event ({e}): {line}"))
        })
        .collect()
}

fn campaign_finished_seq(events: &[Event]) -> u64 {
    events
        .iter()
        .find_map(|e| match e {
            Event::CampaignFinished { seq, .. } => Some(*seq),
            _ => None,
        })
        .expect("stream contains a CampaignFinished event")
}

const LARGE_SPEC: &str = r#"
[campaign]
name = "large"

[[scenario]]
name = "big-star"
graph = { family = "star_with_leaf_edges", n = 64 }
initial = ["greedy_hub", "bfs"]
seeds = [1, 2]
"#;

const SMALL_SPEC: &str = r#"
[campaign]
name = "small"

[[scenario]]
name = "tiny-path"
graph = { family = "path", n = 8 }
initial = "bfs"
seeds = [1]
"#;

const SLOW_SPEC: &str = r#"
[campaign]
name = "slow"

[[scenario]]
name = "big-star-sweep"
graph = { family = "star_with_leaf_edges", n = 300 }
initial = "greedy_hub"
seeds = [1, 2, 3, 4]
"#;

/// The headline lifecycle: two campaigns multiplexed over one worker, the
/// cheap one finishing first under cost-aware scheduling; every streamed
/// line parsing as JSONL; a third campaign cancelled mid-flight; graceful
/// shutdown draining the service.
#[test]
fn serve_end_to_end() {
    let socket = test_socket("e2e");
    let config = ServeConfig {
        socket: socket.clone(),
        workers: 1,
        // Effectively disable the watchdog for this test.
        abort_multiplier: 1e12,
        abort_floor_ms: 1e12,
        quiet: true,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve(&config));
    wait_for_server(&socket);

    // Submit the expensive campaign first, the cheap one second. With one
    // worker and shortest-predicted-cost-first + deficit fairness, the
    // small campaign must still finish before the large one.
    let (large_id, large_runs) =
        client::submit(&socket, LARGE_SPEC.to_string(), SpecFormat::Toml).expect("submit large");
    let (small_id, small_runs) =
        client::submit(&socket, SMALL_SPEC.to_string(), SpecFormat::Toml).expect("submit small");
    assert_eq!(large_runs, 4);
    assert_eq!(small_runs, 1);
    assert_ne!(large_id, small_id);

    // Watch both to completion. The event log is retained after a campaign
    // finishes, so sequential watches still see the full history.
    let mut large_raw = Vec::new();
    let large_report = client::watch(&socket, large_id, 0, &mut large_raw).expect("watch large");
    let mut small_raw = Vec::new();
    let small_report = client::watch(&socket, small_id, 0, &mut small_raw).expect("watch small");

    let large_events = parse_events(&large_raw);
    let small_events = parse_events(&small_raw);
    assert!(
        large_events.len() >= 2 + 4 * 2,
        "lifecycle events for 4 runs"
    );
    assert!(
        campaign_finished_seq(&small_events) < campaign_finished_seq(&large_events),
        "the cheap campaign must finish first (small seq {} vs large seq {})",
        campaign_finished_seq(&small_events),
        campaign_finished_seq(&large_events),
    );
    assert_eq!(large_report.runs.len(), 4);
    assert_eq!(small_report.runs.len(), 1);

    // The served report must agree with a direct in-process run of the same
    // spec on everything deterministic.
    let matrix = ScenarioMatrix::from_toml_str(SMALL_SPEC).expect("parse small spec");
    let direct = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 1,
            ..RunnerConfig::default()
        },
    )
    .expect("direct run");
    for (served, direct) in small_report.runs.iter().zip(direct.runs.iter()) {
        assert_eq!(served.key(), direct.key());
        assert_eq!(served.outcome, direct.outcome);
        assert_eq!(served.initial_degree, direct.initial_degree);
        assert_eq!(served.final_degree, direct.final_degree);
    }

    // A watch replay from a later sequence number skips the prefix.
    let mut tail_raw = Vec::new();
    let from = campaign_finished_seq(&large_events);
    client::watch(&socket, large_id, from, &mut tail_raw).expect("watch tail");
    let tail_events = parse_events(&tail_raw);
    assert!(tail_events.iter().all(|e| e.seq() >= from));
    assert_eq!(
        tail_events.len(),
        1,
        "only the final event is at or past its own seq"
    );

    // Cancel mid-flight: one expensive run is claimed immediately, the rest
    // are pending; cancellation must kill the in-flight run cooperatively
    // and skip the pending ones, all graded `aborted`.
    let (slow_id, slow_runs) =
        client::submit(&socket, SLOW_SPEC.to_string(), SpecFormat::Toml).expect("submit slow");
    assert_eq!(slow_runs, 4);
    std::thread::sleep(Duration::from_millis(100)); // let the worker claim run 1
    let skipped = client::cancel(&socket, slow_id).expect("cancel slow");
    assert!(skipped >= 3, "pending runs skipped, got {skipped}");
    let mut slow_raw = Vec::new();
    let slow_report = client::watch(&socket, slow_id, 0, &mut slow_raw).expect("watch cancelled");
    assert_eq!(slow_report.runs.len(), 4);
    assert!(
        slow_report
            .runs
            .iter()
            .all(|run| run.outcome.label() == "aborted"),
        "every run of a cancelled campaign is aborted"
    );

    // Cancelling an unknown campaign is an error, not a crash.
    assert!(client::cancel(&socket, 9999).is_err());
    assert!(client::watch(&socket, 9999, 0, &mut Vec::new()).is_err());

    // Status: all three campaigns accounted for, the shared topology cache
    // hit (the large campaign reuses each star topology across initials),
    // and the cost model fitted from finished runs.
    let status = client::status(&socket).expect("status");
    assert_eq!(status.workers, 1);
    assert_eq!(status.campaigns.len(), 3);
    let state_of = |id: u64| {
        status
            .campaigns
            .iter()
            .find(|c| c.id == id)
            .map(|c| c.state.clone())
            .expect("campaign listed")
    };
    assert_eq!(state_of(large_id), "done");
    assert_eq!(state_of(small_id), "done");
    assert_eq!(state_of(slow_id), "cancelled");
    assert!(status.cache_hits >= 1, "topology cache hits: {status:?}");
    assert!(
        status.cost_buckets.iter().any(|b| b.samples > 0),
        "cost model fitted: {status:?}"
    );
    let slow_status = status
        .campaigns
        .iter()
        .find(|c| c.id == slow_id)
        .expect("slow campaign listed");
    assert_eq!(slow_status.aborted_runs, 4);
    assert_eq!(slow_status.finished_runs, 4);

    // Graceful shutdown: the server drains and exits, removing its socket.
    client::shutdown(&socket).expect("shutdown");
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    assert!(!socket.exists(), "socket file removed on exit");
}

/// The early-abort watchdog: with a zero budget, the first (unpredicted)
/// campaign runs to completion and fits the model; an identical second
/// campaign is then predicted, instantly over budget, and killed — graded
/// `aborted`, not failed.
#[test]
fn watchdog_aborts_over_budget_runs() {
    let socket = test_socket("watchdog");
    let config = ServeConfig {
        socket: socket.clone(),
        workers: 1,
        abort_multiplier: 0.0,
        abort_floor_ms: 0.0,
        quiet: true,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve(&config));
    wait_for_server(&socket);

    let spec = r#"
[campaign]
name = "budget"

[[scenario]]
name = "star"
graph = { family = "star_with_leaf_edges", n = 300 }
initial = "greedy_hub"
seeds = [1]
"#;

    // Round 1: no prediction exists, so the watchdog must leave it alone.
    let (first, _) = client::submit(&socket, spec.to_string(), SpecFormat::Toml).expect("submit");
    let first_report = client::watch(&socket, first, 0, &mut Vec::new()).expect("watch first");
    assert!(
        first_report
            .runs
            .iter()
            .all(|run| run.outcome.label() != "aborted"),
        "unpredicted runs are never watchdog-killed"
    );

    // Round 2: the model now predicts a positive cost, the zero-multiplier
    // budget is instantly blown, and the watchdog cancels the run.
    let (second, _) = client::submit(&socket, spec.to_string(), SpecFormat::Toml).expect("submit");
    let mut raw = Vec::new();
    let second_report = client::watch(&socket, second, 0, &mut raw).expect("watch second");
    assert!(
        second_report
            .runs
            .iter()
            .all(|run| run.outcome.label() == "aborted"),
        "predicted runs over budget are aborted: {:?}",
        second_report
            .runs
            .iter()
            .map(|r| r.outcome.label())
            .collect::<Vec<_>>()
    );
    let events = parse_events(&raw);
    assert!(events.iter().any(|e| matches!(
        e,
        Event::RunFinished { outcome, predicted_ms, .. }
            if outcome == "aborted" && *predicted_ms > 0.0
    )));

    client::shutdown(&socket).expect("shutdown");
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
}

/// `seed_reports` primes the cost model before the first submission: a
/// report written by a direct run gives the fresh server non-empty cost
/// buckets and positive predicted cost for a matching campaign.
#[test]
fn seed_reports_prime_the_cost_model() {
    let report_path =
        std::env::temp_dir().join(format!("mdst-serve-test-{}-seed.json", std::process::id()));
    let matrix = ScenarioMatrix::from_toml_str(SMALL_SPEC).expect("parse spec");
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: 1,
            ..RunnerConfig::default()
        },
    )
    .expect("direct run");
    {
        use serde::Serialize;
        std::fs::write(&report_path, report.to_value().to_json()).expect("write seed report");
    }

    let socket = test_socket("seeded");
    let config = ServeConfig {
        socket: socket.clone(),
        workers: 1,
        seed_reports: vec![report_path.clone()],
        quiet: true,
        ..ServeConfig::default()
    };
    let server = std::thread::spawn(move || serve(&config));
    wait_for_server(&socket);

    let status = client::status(&socket).expect("status");
    assert!(
        status.cost_buckets.iter().any(|b| b.samples > 0),
        "seed report fitted the model: {status:?}"
    );

    client::shutdown(&socket).expect("shutdown");
    server
        .join()
        .expect("server thread")
        .expect("serve exits cleanly");
    let _ = std::fs::remove_file(&report_path);
}
