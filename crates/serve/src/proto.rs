//! Wire protocol of the campaign service: line-delimited JSON over a Unix
//! domain socket.
//!
//! Every connection carries exactly one [`Request`] line from the client,
//! answered by one [`Response`] line from the server. A
//! [`Request::Watch`] connection stays open after its
//! [`Response::Watching`] acknowledgement: the server then streams one
//! [`Event`] per line (JSONL) until the campaign's
//! [`Event::CampaignFinished`] closes the stream. Messages use the serde
//! stand-in's externally tagged enum encoding, one compact JSON document per
//! line, so any language with a JSON parser can follow along with
//! `nc -U <socket>`.

use mdst_scenario::CampaignReport;
use serde::{Deserialize, Serialize, Value};
use std::io::{BufRead, Write};

/// Default socket path: `scenario-serve.sock` in the system temp directory,
/// overridable everywhere with `--socket`.
pub fn default_socket() -> std::path::PathBuf {
    std::env::temp_dir().join("scenario-serve.sock")
}

/// Spec text format of a [`Request::Submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpecFormat {
    /// TOML campaign spec (the `scenario run` default).
    Toml,
    /// JSON campaign spec.
    Json,
}

/// One client request — the first (and usually only) line of a connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Submit a campaign spec (full text, not a path: the server may not
    /// share a filesystem view with the client). Answered by
    /// [`Response::Submitted`].
    Submit {
        /// Complete spec document text.
        spec: String,
        /// How to parse `spec`.
        format: SpecFormat,
    },
    /// Stream a campaign's event log from sequence number `from_seq`
    /// onwards. Answered by [`Response::Watching`], then one [`Event`] per
    /// line until the campaign finishes.
    Watch {
        /// Campaign id from [`Response::Submitted`].
        campaign: u64,
        /// First global sequence number to deliver (0 = from the start).
        from_seq: u64,
    },
    /// Service-wide status snapshot. Answered by [`Response::Status`].
    Status,
    /// Cancel a campaign: running runs get their cancel tokens raised,
    /// pending runs are recorded as aborted without executing. Answered by
    /// [`Response::Cancelled`].
    Cancel {
        /// Campaign id to cancel.
        campaign: u64,
    },
    /// Graceful shutdown: stop accepting submissions, drain everything
    /// already queued, then exit. Answered by [`Response::ShuttingDown`].
    Shutdown,
}

/// The server's single response line to a [`Request`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A [`Request::Submit`] was accepted.
    Submitted {
        /// Assigned campaign id (monotonic per server).
        campaign: u64,
        /// Number of expanded runs.
        runs: u64,
    },
    /// A [`Request::Watch`] was accepted; [`Event`] lines follow.
    Watching {
        /// The watched campaign.
        campaign: u64,
    },
    /// A [`Request::Status`] snapshot.
    Status(ServeStatus),
    /// A [`Request::Cancel`] took effect.
    Cancelled {
        /// The cancelled campaign.
        campaign: u64,
        /// Pending runs recorded as aborted without executing.
        skipped_runs: u64,
    },
    /// A [`Request::Shutdown`] was accepted; the server drains and exits.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

/// Service-wide snapshot answering [`Request::Status`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStatus {
    /// Worker threads executing runs.
    pub workers: u64,
    /// Shared topology-cache lookups that found the graph already built.
    pub cache_hits: u64,
    /// Shared topology-cache lookups that had to build.
    pub cache_misses: u64,
    /// Every campaign the server has seen, newest last.
    pub campaigns: Vec<CampaignStatus>,
    /// Fitted cost-model buckets, one per (executor, batch) pair.
    pub cost_buckets: Vec<CostBucketStatus>,
}

/// One campaign's scheduling state inside [`ServeStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignStatus {
    /// Campaign id.
    pub id: u64,
    /// Campaign name from the spec.
    pub name: String,
    /// `"running"`, `"done"` or `"cancelled"`.
    pub state: String,
    /// Total expanded runs.
    pub total_runs: u64,
    /// Runs finished (including aborted ones).
    pub finished_runs: u64,
    /// Runs that ended aborted (cancelled or watchdog-killed).
    pub aborted_runs: u64,
    /// Predicted milliseconds of work still pending (0 when the cost model
    /// has no prediction for the remaining runs).
    pub predicted_remaining_ms: f64,
}

/// One fitted cost-model bucket inside [`ServeStatus`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostBucketStatus {
    /// Bucket key, `"<executor>/batch<batch>"`.
    pub bucket: String,
    /// Fitted milliseconds per unit of work (`n + m`).
    pub ms_per_work: f64,
    /// Observations folded into the fit.
    pub samples: u64,
}

/// One line of a campaign's JSONL event stream. `seq` is a single global
/// counter across all campaigns, so interleaved streams from concurrent
/// campaigns still expose one total order (the integration tests use it to
/// prove the small campaign finished first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A worker claimed the run and is about to execute it.
    RunStarted {
        /// Global sequence number.
        seq: u64,
        /// Owning campaign.
        campaign: u64,
        /// Full run configuration key (see `mdst_scenario::run_key`).
        key: String,
        /// Cost-model prediction for this run (0 = unseeded model).
        predicted_ms: f64,
    },
    /// One observer callback forwarded from the running session.
    Observer {
        /// Global sequence number.
        seq: u64,
        /// Owning campaign.
        campaign: u64,
        /// Full run configuration key.
        key: String,
        /// Event kind: `construction`, `round`, `exchange`, `fault`,
        /// `finish`.
        kind: String,
        /// Human-readable rendering of the event payload.
        detail: String,
    },
    /// The run completed (any outcome, including `aborted`).
    RunFinished {
        /// Global sequence number.
        seq: u64,
        /// Owning campaign.
        campaign: u64,
        /// Full run configuration key.
        key: String,
        /// Stable outcome label (e.g. `quiesced-correct`, `aborted`).
        outcome: String,
        /// Measured improvement-phase wall milliseconds.
        exec_wall_ms: f64,
        /// The prediction the scheduler made (0 = none).
        predicted_ms: f64,
    },
    /// Every run of the campaign is accounted for; the aggregated report
    /// follows and the event stream ends.
    CampaignFinished {
        /// Global sequence number.
        seq: u64,
        /// Owning campaign.
        campaign: u64,
        /// The same report `scenario run` would have produced.
        report: CampaignReport,
    },
}

impl Event {
    /// The event's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            Event::RunStarted { seq, .. }
            | Event::Observer { seq, .. }
            | Event::RunFinished { seq, .. }
            | Event::CampaignFinished { seq, .. } => *seq,
        }
    }
}

/// Serializes `msg` as one compact JSON line and flushes it.
pub fn write_line<T: Serialize>(writer: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let mut line = msg.to_value().to_json();
    line.push('\n');
    writer.write_all(line.as_bytes())?;
    writer.flush()
}

/// Reads one line and decodes it as `T`. `Ok(None)` means a clean EOF before
/// any content.
pub fn read_line<T: Deserialize>(reader: &mut impl BufRead) -> Result<Option<T>, String> {
    let mut line = String::new();
    let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
    if n == 0 {
        return Ok(None);
    }
    let value: Value = serde::from_json_str(line.trim_end()).map_err(|e| e.to_string())?;
    T::from_value(&value).map(Some).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T>(msg: &T) -> T
    where
        T: Serialize + Deserialize,
    {
        let json = msg.to_value().to_json();
        assert!(!json.contains('\n'), "line protocol must stay one line");
        T::from_value(&serde::from_json_str(&json).unwrap()).unwrap()
    }

    #[test]
    fn requests_round_trip_as_single_lines() {
        for req in [
            Request::Submit {
                spec: "[[scenario]]\nname = \"x\"".to_string(),
                format: SpecFormat::Toml,
            },
            Request::Watch {
                campaign: 3,
                from_seq: 17,
            },
            Request::Status,
            Request::Cancel { campaign: 3 },
            Request::Shutdown,
        ] {
            assert_eq!(round_trip(&req), req);
        }
    }

    #[test]
    fn responses_and_events_round_trip() {
        let resp = Response::Submitted {
            campaign: 1,
            runs: 12,
        };
        assert_eq!(round_trip(&resp), resp);
        let event = Event::RunFinished {
            seq: 9,
            campaign: 1,
            key: "suite / path(n=8) / bfs / uniform / sync / none / sim / seed 1".to_string(),
            outcome: "aborted".to_string(),
            exec_wall_ms: 4.25,
            predicted_ms: 3.5,
        };
        assert_eq!(round_trip(&event), event);
        assert_eq!(event.seq(), 9);
    }

    #[test]
    fn line_codec_round_trips_over_a_buffer() {
        let mut buf = Vec::new();
        write_line(&mut buf, &Request::Status).unwrap();
        write_line(&mut buf, &Request::Shutdown).unwrap();
        let mut reader = std::io::BufReader::new(&buf[..]);
        let first: Request = read_line(&mut reader).unwrap().unwrap();
        let second: Request = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(first, Request::Status);
        assert_eq!(second, Request::Shutdown);
        assert!(read_line::<Request>(&mut reader).unwrap().is_none());
    }
}
