//! # mdst-serve
//!
//! The resident campaign service for the MDST scenario harness, and the
//! home of the `scenario` CLI binary.
//!
//! A `scenario run` process pays its whole setup cost — graph builds, cost
//! discovery, JIT-warm executors — for one campaign and then exits.
//! `scenario serve` keeps that state resident: a Unix-domain-socket server
//! accepts campaign submissions, multiplexes all of them over one shared
//! worker pool and one shared topology cache, streams per-run lifecycle and
//! observer events to watching clients as JSONL, and schedules runs
//! **cost-aware**: an online model fit from recorded `exec_wall_ms` over
//! `(n, m, executor, batch)` predicts each run's duration, shortest first,
//! with deficit fairness across campaigns and an early-abort watchdog that
//! cancels runs blowing their predicted budget (graded `aborted`, not
//! errored).
//!
//! * [`proto`] — the line-delimited JSON wire protocol (requests,
//!   responses, the JSONL event stream).
//! * [`cost`] — the per-`(executor, batch)` online cost model.
//! * [`scheduler`] — shortest-predicted-cost-first claims with per-campaign
//!   deficit fairness, cooperative cancellation, drain-on-shutdown.
//! * [`server`] — the resident server: accept loop, workers, watchdog,
//!   per-campaign event logs.
//! * [`client`] — one-connection-per-command client calls backing the
//!   `scenario submit|watch|status|cancel|shutdown` subcommands.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cost;
pub mod proto;
pub mod scheduler;
pub mod server;

pub use cost::CostModel;
pub use proto::{default_socket, Event, Request, Response, ServeStatus, SpecFormat};
pub use scheduler::Scheduler;
pub use server::{serve, ServeConfig};
