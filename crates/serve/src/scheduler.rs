//! Cost-aware, campaign-fair run scheduler.
//!
//! All resident campaigns multiplex over one shared worker budget. Two
//! forces shape the claim order:
//!
//! * **Shortest predicted cost first** *within* a campaign: cheap runs
//!   complete early, so watchers see progress and the queue drains at
//!   maximum run-completion rate.
//! * **Deficit fairness** *across* campaigns: every campaign accumulates
//!   `served_cost` (the sum of predictions of runs already claimed for it),
//!   and workers always claim for the campaign with the least served cost.
//!   A huge campaign therefore cannot starve a small one submitted later —
//!   the small one's total cost is low, so it keeps winning claims until it
//!   completes.
//!
//! The scheduler is a plain `Mutex` + `Condvar` state machine with no
//! threads of its own: worker threads call [`Scheduler::claim`] (blocking)
//! and [`Scheduler::complete`], the server's watchdog calls
//! [`Scheduler::overdue_tokens`], and client handlers call the submit /
//! cancel / status entry points. Every decision is deterministic given the
//! claim interleaving, which keeps the unit tests honest.

use crate::cost::CostModel;
use mdst_netsim::CancelToken;
use mdst_scenario::prelude::{RunSpec, ScenarioMatrix};
use mdst_scenario::{aggregate_records, CampaignReport, PredictedMs, RunOutcome, RunRecord};
use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Scheduling state of one expanded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RunState {
    Pending,
    Running,
    Done,
}

/// One resident campaign.
struct Campaign {
    id: u64,
    name: String,
    scenario_order: Vec<String>,
    specs: Vec<RunSpec>,
    states: Vec<RunState>,
    records: Vec<Option<RunRecord>>,
    /// Scheduling cost per run, frozen at submit time so the claim order is
    /// stable (the model keeps learning for *later* campaigns).
    costs: Vec<f64>,
    /// Sum of costs of runs already claimed — the fairness deficit counter.
    served_cost: f64,
    cancelled: bool,
    submitted: Instant,
    report: Option<CampaignReport>,
}

impl Campaign {
    fn pending_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == RunState::Pending)
            .map(|(i, _)| i)
    }

    /// The cheapest pending run, by (cost, index).
    fn cheapest_pending(&self) -> Option<usize> {
        self.pending_indices()
            .min_by(|&a, &b| self.costs[a].total_cmp(&self.costs[b]).then(a.cmp(&b)))
    }

    fn finished(&self) -> bool {
        self.states.iter().all(|s| *s == RunState::Done)
    }
}

/// One run a worker is currently executing, tracked for the watchdog and
/// for campaign cancellation.
struct RunningRun {
    token: CancelToken,
    started: Instant,
    predicted_ms: f64,
}

struct State {
    campaigns: BTreeMap<u64, Campaign>,
    running: BTreeMap<(u64, usize), RunningRun>,
    next_id: u64,
    shutting_down: bool,
}

/// A claimed run: everything a worker needs to execute it and report back.
pub struct Claim {
    /// Owning campaign id.
    pub campaign: u64,
    /// Index in the campaign's expansion order.
    pub run: usize,
    /// The spec to execute.
    pub spec: RunSpec,
    /// Cost-model prediction in milliseconds (0 = unseeded, no claim).
    pub predicted_ms: f64,
    /// Cancel token the watchdog / a cancel request may raise mid-run.
    pub token: CancelToken,
}

/// What [`Scheduler::complete`] tells the server about campaign progress.
pub struct Completion {
    /// The just-finished run's record (already stored), cloned for event
    /// emission.
    pub record: RunRecord,
    /// When this run was the campaign's last: the aggregated report.
    pub campaign_report: Option<CampaignReport>,
}

/// See the [module docs](self).
pub struct Scheduler {
    state: Mutex<State>,
    work: Condvar,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            state: Mutex::new(State {
                campaigns: BTreeMap::new(),
                running: BTreeMap::new(),
                next_id: 1,
                shutting_down: false,
            }),
            work: Condvar::new(),
        }
    }

    /// Admits a campaign: expands the matrix, freezes per-run scheduling
    /// costs from the current model fit, and wakes the workers. Returns
    /// `(campaign id, run count)`.
    pub fn submit(
        &self,
        matrix: &ScenarioMatrix,
        model: &CostModel,
    ) -> Result<(u64, usize), String> {
        let specs = matrix.expand().map_err(|e| e.to_string())?;
        if specs.is_empty() {
            return Err("spec expands to zero runs".to_string());
        }
        let mut state = lock(&self.state);
        if state.shutting_down {
            return Err("server is shutting down".to_string());
        }
        let id = state.next_id;
        state.next_id += 1;
        let costs = specs.iter().map(|s| model.scheduling_cost(s)).collect();
        let count = specs.len();
        let states = vec![RunState::Pending; count];
        let records = vec![None; count];
        state.campaigns.insert(
            id,
            Campaign {
                id,
                name: matrix.name.clone(),
                scenario_order: matrix.scenario_order(),
                specs,
                states,
                records,
                costs,
                served_cost: 0.0,
                cancelled: false,
                submitted: Instant::now(),
                report: None,
            },
        );
        self.work.notify_all();
        Ok((id, count))
    }

    /// Blocks until a run is claimable (returning it) or the scheduler is
    /// shutting down with nothing pending (returning `None` — the worker
    /// should exit). Claim order: the campaign with the smallest
    /// `(served_cost, cheapest pending cost, id)` wins, and surrenders its
    /// cheapest pending run.
    ///
    /// `predict` is consulted once per successful claim for the *live*
    /// cost-model estimate (the frozen ordering costs may be stale); it is
    /// a closure rather than a `&CostModel` so callers can keep the model
    /// behind its own lock without holding it across this call's blocking
    /// wait.
    pub fn claim(&self, predict: impl Fn(&RunSpec) -> f64) -> Option<Claim> {
        let mut state = lock(&self.state);
        loop {
            let choice = state
                .campaigns
                .values()
                .filter(|c| !c.cancelled)
                .filter_map(|c| c.cheapest_pending().map(|idx| (c, idx)))
                .min_by(|(a, ai), (b, bi)| {
                    a.served_cost
                        .total_cmp(&b.served_cost)
                        .then(a.costs[*ai].total_cmp(&b.costs[*bi]))
                        .then(a.id.cmp(&b.id))
                })
                .map(|(c, idx)| (c.id, idx));
            if let Some((campaign_id, run_idx)) = choice {
                let campaign = state
                    .campaigns
                    .get_mut(&campaign_id)
                    .expect("chosen campaign exists");
                campaign.states[run_idx] = RunState::Running;
                campaign.served_cost += campaign.costs[run_idx];
                let spec = campaign.specs[run_idx].clone();
                // The prediction is re-read from the *live* model (not the
                // frozen ordering costs): later campaigns sharpened it, and
                // the watchdog budget should use the best current estimate.
                let predicted_ms = predict(&spec);
                let token = CancelToken::new();
                state.running.insert(
                    (campaign_id, run_idx),
                    RunningRun {
                        token: token.clone(),
                        started: Instant::now(),
                        predicted_ms,
                    },
                );
                return Some(Claim {
                    campaign: campaign_id,
                    run: run_idx,
                    spec,
                    predicted_ms,
                    token,
                });
            }
            if state.shutting_down && state.running.is_empty() {
                return None;
            }
            state = self
                .work
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Records a finished run. When it was the campaign's last, aggregates
    /// and stores the campaign report (also returned for event emission).
    pub fn complete(&self, campaign_id: u64, run_idx: usize, record: RunRecord) -> Completion {
        let mut state = lock(&self.state);
        state.running.remove(&(campaign_id, run_idx));
        let campaign = state
            .campaigns
            .get_mut(&campaign_id)
            .expect("completing a known campaign");
        campaign.states[run_idx] = RunState::Done;
        campaign.records[run_idx] = Some(record.clone());
        let campaign_report = campaign.finished().then(|| {
            let records: Vec<RunRecord> = campaign
                .records
                .iter()
                .map(|r| r.clone().expect("finished campaign has every record"))
                .collect();
            let report = aggregate_records(
                &campaign.name,
                &campaign.scenario_order,
                records,
                0,
                None,
                campaign.submitted.elapsed().as_secs_f64() * 1e3,
            );
            campaign.report = Some(report.clone());
            report
        });
        // Wake workers (a claim may have been blocked on shutdown-drain
        // accounting) and any status poller logic layered above.
        self.work.notify_all();
        Completion {
            record,
            campaign_report,
        }
    }

    /// Cancels a campaign: pending runs are recorded as aborted without
    /// executing (so the final report still covers the full expansion), and
    /// the tokens of its running runs are raised. Returns the number of
    /// pending runs skipped, or `None` for an unknown campaign.
    pub fn cancel(&self, campaign_id: u64) -> Option<(u64, Vec<Completion>)> {
        let mut state = lock(&self.state);
        let campaign = state.campaigns.get_mut(&campaign_id)?;
        campaign.cancelled = true;
        let skipped: Vec<usize> = campaign.pending_indices().collect();
        let specs: Vec<RunSpec> = skipped.iter().map(|&i| campaign.specs[i].clone()).collect();
        for (token_key, run) in state.running.iter() {
            if token_key.0 == campaign_id {
                run.token.cancel();
            }
        }
        drop(state);
        // Synthesize aborted records through the normal completion path so
        // report aggregation and event emission stay uniform.
        let completions: Vec<Completion> = skipped
            .into_iter()
            .zip(specs)
            .map(|(idx, spec)| self.complete(campaign_id, idx, aborted_record(&spec)))
            .collect();
        Some((completions.len() as u64, completions))
    }

    /// Begins a graceful shutdown: no new submissions, workers exit once
    /// everything already queued has drained.
    pub fn shutdown(&self) {
        lock(&self.state).shutting_down = true;
        self.work.notify_all();
    }

    /// Whether a shutdown is in progress.
    pub fn is_shutting_down(&self) -> bool {
        lock(&self.state).shutting_down
    }

    /// Whether every admitted run is done (used by the accept loop to know
    /// when a drain has converged).
    pub fn drained(&self) -> bool {
        let state = lock(&self.state);
        state.running.is_empty() && state.campaigns.values().all(Campaign::finished)
    }

    /// Cancel tokens of running runs whose elapsed wall time exceeds
    /// `max(predicted × multiplier, floor_ms)` — the early-abort watchdog's
    /// scan. Runs without a prediction are never killed: an unseeded model
    /// has no standing to call anything overdue.
    pub fn overdue_tokens(&self, multiplier: f64, floor_ms: f64) -> Vec<CancelToken> {
        let state = lock(&self.state);
        state
            .running
            .values()
            .filter(|run| run.predicted_ms > 0.0)
            .filter(|run| {
                let budget_ms = (run.predicted_ms * multiplier).max(floor_ms);
                run.started.elapsed().as_secs_f64() * 1e3 > budget_ms
            })
            .map(|run| run.token.clone())
            .collect()
    }

    /// The stored report of a finished campaign, if any.
    pub fn report(&self, campaign_id: u64) -> Option<CampaignReport> {
        lock(&self.state)
            .campaigns
            .get(&campaign_id)
            .and_then(|c| c.report.clone())
    }

    /// Status snapshot of every campaign, oldest first.
    pub fn campaign_statuses(&self) -> Vec<crate::proto::CampaignStatus> {
        let state = lock(&self.state);
        state
            .campaigns
            .values()
            .map(|c| {
                let finished = c.states.iter().filter(|s| **s == RunState::Done).count();
                let aborted = c
                    .records
                    .iter()
                    .flatten()
                    .filter(|r| r.outcome == RunOutcome::Aborted)
                    .count();
                let predicted_remaining_ms: f64 = c.pending_indices().map(|i| c.costs[i]).sum();
                crate::proto::CampaignStatus {
                    id: c.id,
                    name: c.name.clone(),
                    state: if c.cancelled {
                        "cancelled".to_string()
                    } else if c.finished() {
                        "done".to_string()
                    } else {
                        "running".to_string()
                    },
                    total_runs: c.specs.len() as u64,
                    finished_runs: finished as u64,
                    aborted_runs: aborted as u64,
                    predicted_remaining_ms,
                }
            })
            .collect()
    }
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler::new()
    }
}

/// A record for a run that was cancelled before it started: the identity
/// fields are real, every measurement is zero, the outcome is `aborted`.
fn aborted_record(spec: &RunSpec) -> RunRecord {
    RunRecord {
        scenario: spec.scenario.clone(),
        graph: spec.graph.label(),
        initial: spec.initial.clone(),
        delay: spec.delay.label(),
        start: spec.start.label(),
        faults: spec.faults.label(),
        executor: spec.executor.label().to_string(),
        batch: mdst_scenario::runner::BatchSize(spec.batch),
        audit: spec.audit,
        seed: spec.seed,
        n: 0,
        m: 0,
        outcome: RunOutcome::Aborted,
        initial_degree: 0,
        final_degree: 0,
        degree_lower_bound: 0,
        degree_upper_bound: 0,
        within_bound: false,
        dropped_messages: 0,
        crashed_nodes: 0,
        survivors: 0,
        approx_ratio: 0.0,
        messages: 0,
        construction_messages: 0,
        causal_time: 0,
        quiescence_time: 0,
        rounds: 0,
        improvements: 0,
        exec_wall_ms: 0.0,
        predicted_wall_ms: PredictedMs(0.0),
        audit_findings: 0,
        audit_rules: String::new(),
        wall_ms: 0.0,
        error: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(name: &str, n: u64, seeds: &str) -> ScenarioMatrix {
        ScenarioMatrix::from_toml_str(&format!(
            r#"
            [campaign]
            name = "{name}"

            [[scenario]]
            name = "{name}"
            graph = {{ family = "path", n = {n} }}
            seeds = {seeds}
            "#
        ))
        .unwrap()
    }

    #[test]
    fn deficit_fairness_interleaves_a_small_campaign_into_a_big_one() {
        let sched = Scheduler::new();
        let model = CostModel::new();
        // Big campaign first (4 runs of n=64), then a small one (1 run of
        // n=8). Work-proportional costs: big runs cost 192 each, small 24.
        let (big, _) = sched
            .submit(&matrix("big", 64, "[1, 2, 3, 4]"), &model)
            .unwrap();
        let (small, _) = sched.submit(&matrix("small", 8, "[1]"), &model).unwrap();
        // First claim: both campaigns have served 0; tie breaks to the
        // cheaper pending run, which is the small campaign's.
        let first = sched.claim(|s| model.predict(s)).unwrap();
        assert_eq!(first.campaign, small);
        // After the small campaign served 24, the big one (served 0) wins.
        let second = sched.claim(|s| model.predict(s)).unwrap();
        assert_eq!(second.campaign, big);
    }

    #[test]
    fn completion_of_the_last_run_aggregates_a_report() {
        let sched = Scheduler::new();
        let model = CostModel::new();
        let (id, runs) = sched.submit(&matrix("one", 8, "[1]"), &model).unwrap();
        assert_eq!(runs, 1);
        let claim = sched.claim(|s| model.predict(s)).unwrap();
        let done = sched.complete(id, claim.run, aborted_record(&claim.spec));
        let report = done.campaign_report.expect("last run closes the campaign");
        assert_eq!(report.runs.len(), 1);
        assert_eq!(report.runs[0].outcome, RunOutcome::Aborted);
        assert_eq!(sched.report(id).unwrap().name, "one");
        assert!(sched.drained());
    }

    #[test]
    fn cancel_skips_pending_runs_and_raises_running_tokens() {
        let sched = Scheduler::new();
        let model = CostModel::new();
        let (id, _) = sched.submit(&matrix("c", 8, "[1, 2, 3]"), &model).unwrap();
        let claim = sched.claim(|s| model.predict(s)).unwrap();
        assert!(!claim.token.is_cancelled());
        let (_, completions) = sched.cancel(id).unwrap();
        // The two never-claimed runs were synthesized as aborted…
        assert_eq!(completions.len(), 2);
        // …and the in-flight run's token is up.
        assert!(claim.token.is_cancelled());
        // Completing the in-flight run closes the campaign.
        let done = sched.complete(id, claim.run, aborted_record(&claim.spec));
        let report = done.campaign_report.unwrap();
        assert_eq!(report.runs.len(), 3);
        assert!(report.runs.iter().all(|r| r.outcome == RunOutcome::Aborted));
        let status = &sched.campaign_statuses()[0];
        assert_eq!(status.state, "cancelled");
        assert_eq!(status.aborted_runs, 3);
    }

    #[test]
    fn shutdown_drains_claims_then_releases_workers() {
        let sched = Scheduler::new();
        let model = CostModel::new();
        let (id, _) = sched.submit(&matrix("d", 8, "[1]"), &model).unwrap();
        sched.shutdown();
        assert!(sched.submit(&matrix("late", 8, "[1]"), &model).is_err());
        // The already-queued run still gets claimed (drain semantics)…
        let claim = sched
            .claim(|s| model.predict(s))
            .expect("queued work drains");
        sched.complete(id, claim.run, aborted_record(&claim.spec));
        // …and with nothing left, claim returns None so workers exit.
        assert!(sched.claim(|s| model.predict(s)).is_none());
    }

    #[test]
    fn watchdog_only_flags_predicted_runs_past_their_budget() {
        let sched = Scheduler::new();
        let mut model = CostModel::new();
        let (_, _) = sched.submit(&matrix("w", 8, "[1]"), &model).unwrap();
        let _claim = sched.claim(|s| model.predict(s)).unwrap();
        // Unseeded model → predicted 0 → never overdue, even at budget 0.
        assert!(sched.overdue_tokens(0.0, 0.0).is_empty());
        // Seed the model, claim a predicted run, and shrink the budget to
        // zero: the elapsed time (however small) now exceeds it.
        let m = matrix("w2", 8, "[1]");
        let report =
            mdst_scenario::run_campaign(&m, &mdst_scenario::RunnerConfig::default()).unwrap();
        model.seed_from_report(&report);
        let (_, _) = sched.submit(&m, &model).unwrap();
        let claim = sched.claim(|s| model.predict(s)).unwrap();
        assert!(claim.predicted_ms > 0.0);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let overdue = sched.overdue_tokens(0.0, 0.0);
        assert_eq!(overdue.len(), 1);
        overdue[0].cancel();
        assert!(claim.token.is_cancelled());
    }
}
