//! The resident campaign server behind `scenario serve`.
//!
//! One process, std-only: a nonblocking `UnixListener` accept loop, N
//! worker threads multiplexing every resident campaign through the
//! [`crate::scheduler::Scheduler`], a watchdog thread enforcing the
//! cost-model early-abort budget, and one shared
//! [`mdst_scenario::TopologyCache`] so concurrent campaigns sweeping the
//! same graphs build each topology exactly once.
//!
//! Every campaign owns an append-only JSONL event log (`EventLog`): run
//! lifecycle transitions and forwarded per-run observer events, each
//! stamped with one *global* sequence number. `watch` connections replay
//! the log from any sequence number and then follow it live (condvar-woken,
//! no polling) until the campaign's final event. The log is retained after
//! completion, so a watcher that connects late still sees the whole story.

use crate::cost::CostModel;
use crate::proto::{read_line, write_line, Event, Request, Response, ServeStatus, SpecFormat};
use crate::scheduler::{Claim, Completion, Scheduler};
use mdst_core::{ChannelObserver, SessionEvent};
use mdst_scenario::prelude::ScenarioMatrix;
use mdst_scenario::{execute_run_controlled, CampaignReport, RunControls, TopologyCache};
use std::collections::BTreeMap;
use std::io::{BufReader, BufWriter};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Duration;

/// Tuning of one [`serve`] instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Socket path; an existing file is replaced (a previous server's
    /// leftover).
    pub socket: PathBuf,
    /// Worker threads (`0` = one per available CPU).
    pub workers: usize,
    /// Early-abort budget: a run is cancelled once its elapsed wall time
    /// exceeds `predicted × abort_multiplier` (and the floor). Generous by
    /// default — the watchdog exists to kill order-of-magnitude blowups,
    /// not jitter.
    pub abort_multiplier: f64,
    /// Absolute floor (milliseconds) under which the watchdog never kills,
    /// whatever the multiplier says: predictions on micro-runs are noise.
    pub abort_floor_ms: f64,
    /// Past campaign reports (JSON paths) folded into the cost model before
    /// the first submission.
    pub seed_reports: Vec<PathBuf>,
    /// Suppress per-event stderr narration.
    pub quiet: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            socket: crate::proto::default_socket(),
            workers: 0,
            abort_multiplier: 8.0,
            abort_floor_ms: 250.0,
            seed_reports: Vec::new(),
            quiet: false,
        }
    }
}

/// Append-only JSONL log of one campaign's events, with a condvar so
/// watchers block (instead of polling) while the campaign is live.
struct EventLog {
    lines: Mutex<(Vec<String>, bool)>,
    grew: Condvar,
}

impl EventLog {
    fn new() -> Self {
        EventLog {
            lines: Mutex::new((Vec::new(), false)),
            grew: Condvar::new(),
        }
    }

    fn append(&self, line: String, last: bool) {
        let mut state = self.lines.lock().unwrap_or_else(PoisonError::into_inner);
        state.0.push(line);
        state.1 |= last;
        self.grew.notify_all();
    }

    /// Lines from index `from` onwards, blocking until at least one more
    /// exists or the log is closed. Returns `None` when closed with nothing
    /// further.
    fn wait_from(&self, from: usize) -> Option<Vec<String>> {
        let mut state = self.lines.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if state.0.len() > from {
                return Some(state.0[from..].to_vec());
            }
            if state.1 {
                return None;
            }
            state = self
                .grew
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Inner {
    scheduler: Scheduler,
    cost: Mutex<CostModel>,
    topologies: TopologyCache,
    logs: Mutex<BTreeMap<u64, Arc<EventLog>>>,
    seq: AtomicU64,
    workers: usize,
    quiet: bool,
}

impl Inner {
    fn next_seq(&self) -> u64 {
        self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// The campaign's event log, created on first touch: the submit
    /// handler, the first worker to claim one of its runs, and watchers all
    /// race to be that first touch, and none of them may lose events to the
    /// others.
    fn log_of(&self, campaign: u64) -> Arc<EventLog> {
        self.logs
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .entry(campaign)
            .or_insert_with(|| Arc::new(EventLog::new()))
            .clone()
    }

    fn emit(&self, campaign: u64, event: &Event, last: bool) {
        use serde::Serialize;
        self.log_of(campaign)
            .append(event.to_value().to_json(), last);
    }

    /// One worker's life: claim, execute with cancellation + prediction +
    /// a forwarding observer, report back, repeat until drained shutdown.
    fn worker_loop(&self) {
        // The predictor closure takes the cost lock only inside a
        // successful claim — never across `claim`'s blocking wait, which
        // would deadlock submissions against the model.
        let predict = |spec: &_| {
            self.cost
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .predict(spec)
        };
        while let Some(claim) = self.scheduler.claim(predict) {
            self.execute_claim(claim);
        }
    }

    fn execute_claim(&self, claim: Claim) {
        let Claim {
            campaign,
            run,
            spec,
            predicted_ms,
            token,
        } = claim;
        let key = mdst_scenario::run_key(
            &spec.scenario,
            &spec.graph.label(),
            &spec.initial,
            &spec.delay.label(),
            &spec.start.label(),
            &spec.faults.label(),
            spec.executor.label(),
            spec.batch,
            spec.seed,
        );
        self.emit(
            campaign,
            &Event::RunStarted {
                seq: self.next_seq(),
                campaign,
                key: key.clone(),
                predicted_ms,
            },
            false,
        );
        // Observer events flow through an mpsc channel to a drain thread
        // that appends them to the campaign log while the run executes, so
        // a watcher sees the construction-phase boundary live, not after
        // quiescence.
        let (tx, rx) = std::sync::mpsc::channel::<SessionEvent>();
        let drain_key = key.clone();
        let record = std::thread::scope(|scope| {
            scope.spawn(move || {
                for event in rx {
                    let (kind, detail) = describe_session_event(&event);
                    self.emit(
                        campaign,
                        &Event::Observer {
                            seq: self.next_seq(),
                            campaign,
                            key: drain_key.clone(),
                            kind,
                            detail,
                        },
                        false,
                    );
                }
            });
            let mut forwarder = ChannelObserver::new(tx);
            execute_run_controlled(
                &spec,
                &self.topologies,
                RunControls {
                    progress: false,
                    cancel: Some(token),
                    predicted_wall_ms: predicted_ms,
                    observer: Some(&mut forwarder),
                },
            )
            // `forwarder` (and its channel sender) drops here, closing the
            // drain thread's iterator; the scope joins it before returning.
        });
        {
            let mut model = self.cost.lock().unwrap_or_else(PoisonError::into_inner);
            model.observe(&record);
        }
        if !self.quiet {
            eprintln!(
                "serve: campaign {campaign} {key}: {} ({:.1} ms, predicted {:.1} ms)",
                record.outcome.label(),
                record.exec_wall_ms,
                predicted_ms,
            );
        }
        let outcome = record.outcome.label().to_string();
        let exec_wall_ms = record.exec_wall_ms;
        let completion = self.scheduler.complete(campaign, run, record);
        self.emit(
            campaign,
            &Event::RunFinished {
                seq: self.next_seq(),
                campaign,
                key,
                outcome,
                exec_wall_ms,
                predicted_ms,
            },
            false,
        );
        self.finish_campaign_if_done(campaign, completion);
    }

    fn finish_campaign_if_done(&self, campaign: u64, completion: Completion) {
        let Completion {
            campaign_report: Some(report),
            ..
        } = completion
        else {
            return;
        };
        self.emit(
            campaign,
            &Event::CampaignFinished {
                seq: self.next_seq(),
                campaign,
                report,
            },
            true,
        );
    }

    fn status(&self) -> ServeStatus {
        let (hits, misses) = self.topologies.stats();
        ServeStatus {
            workers: self.workers as u64,
            cache_hits: hits,
            cache_misses: misses,
            campaigns: self.scheduler.campaign_statuses(),
            cost_buckets: self
                .cost
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .status(),
        }
    }

    fn handle_connection(&self, stream: UnixStream) {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => return,
        });
        let mut writer = BufWriter::new(stream);
        let request: Request = match read_line(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(message) => {
                let _ = write_line(&mut writer, &Response::Error { message });
                return;
            }
        };
        match request {
            Request::Submit { spec, format } => {
                let parsed = match format {
                    SpecFormat::Toml => ScenarioMatrix::from_toml_str(&spec),
                    SpecFormat::Json => ScenarioMatrix::from_json_str(&spec),
                };
                // Snapshot the model before touching the scheduler: claim
                // takes the scheduler lock first and the cost lock second,
                // so holding cost across `submit` would invert the order.
                let model = self
                    .cost
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .clone();
                let response = match parsed
                    .map_err(|e| e.to_string())
                    .and_then(|matrix| self.scheduler.submit(&matrix, &model))
                {
                    Ok((campaign, runs)) => {
                        let _ = self.log_of(campaign);
                        if !self.quiet {
                            eprintln!("serve: campaign {campaign} submitted ({runs} runs)");
                        }
                        Response::Submitted {
                            campaign,
                            runs: runs as u64,
                        }
                    }
                    Err(message) => Response::Error { message },
                };
                let _ = write_line(&mut writer, &response);
            }
            Request::Watch { campaign, from_seq } => {
                let known = self
                    .scheduler
                    .campaign_statuses()
                    .iter()
                    .any(|c| c.id == campaign);
                if !known {
                    let _ = write_line(
                        &mut writer,
                        &Response::Error {
                            message: format!("unknown campaign {campaign}"),
                        },
                    );
                    return;
                }
                let log = self.log_of(campaign);
                if write_line(&mut writer, &Response::Watching { campaign }).is_err() {
                    return;
                }
                let mut cursor = 0usize;
                while let Some(lines) = log.wait_from(cursor) {
                    cursor += lines.len();
                    for line in lines {
                        // Seq filtering happens on the decoded event so the
                        // stream stays plain JSONL.
                        let keep = serde::from_json_str(&line)
                            .ok()
                            .and_then(|v| {
                                use serde::Deserialize;
                                Event::from_value(&v).ok()
                            })
                            .is_none_or(|e| e.seq() >= from_seq);
                        if keep {
                            use std::io::Write;
                            if writer
                                .write_all(line.as_bytes())
                                .and_then(|()| writer.write_all(b"\n"))
                                .and_then(|()| writer.flush())
                                .is_err()
                            {
                                return; // watcher went away
                            }
                        }
                    }
                }
            }
            Request::Status => {
                let _ = write_line(&mut writer, &Response::Status(self.status()));
            }
            Request::Cancel { campaign } => {
                let response = match self.scheduler.cancel(campaign) {
                    Some((skipped_runs, completions)) => {
                        for completion in completions {
                            self.finish_campaign_if_done(campaign, completion);
                        }
                        Response::Cancelled {
                            campaign,
                            skipped_runs,
                        }
                    }
                    None => Response::Error {
                        message: format!("unknown campaign {campaign}"),
                    },
                };
                let _ = write_line(&mut writer, &response);
            }
            Request::Shutdown => {
                self.scheduler.shutdown();
                let _ = write_line(&mut writer, &Response::ShuttingDown);
            }
        }
    }
}

/// Human-readable flattening of one observer callback for the event stream.
fn describe_session_event(event: &SessionEvent) -> (String, String) {
    match event {
        SessionEvent::Construction(c) => (
            "construction".to_string(),
            format!(
                "n={} m={} initial_degree={} construction_messages={}",
                c.n, c.m, c.initial_degree, c.construction_messages
            ),
        ),
        SessionEvent::Round(r) => (
            "round".to_string(),
            format!("round={} improved={:?}", r.round, r.improved),
        ),
        SessionEvent::Exchange(e) => ("exchange".to_string(), format!("index={}", e.index)),
        SessionEvent::Fault(f) => ("fault".to_string(), format!("{f:?}")),
        SessionEvent::Finish(f) => (
            "finish".to_string(),
            format!(
                "outcome={} rounds={} improvements={} final_degree={} wall_ms={:.3}",
                f.outcome, f.rounds, f.improvements, f.final_degree, f.wall_ms
            ),
        ),
    }
}

/// Runs the campaign service until a graceful shutdown completes. Binds the
/// socket, seeds the cost model, spawns the workers and the watchdog, then
/// accepts connections; returns once a `shutdown` request has drained every
/// queued run.
pub fn serve(config: &ServeConfig) -> Result<(), String> {
    let workers = if config.workers == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        config.workers
    };
    let mut model = CostModel::new();
    for path in &config.seed_reports {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let value = serde::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        use serde::Deserialize;
        let report = CampaignReport::from_value(&value)
            .map_err(|e| format!("{}: not a campaign report: {e}", path.display()))?;
        model.seed_from_report(&report);
        if !config.quiet {
            eprintln!(
                "serve: cost model seeded from {} ({} runs)",
                path.display(),
                report.runs.len()
            );
        }
    }
    // A leftover socket file from a dead server blocks bind; replace it.
    let _ = std::fs::remove_file(&config.socket);
    let listener = UnixListener::bind(&config.socket)
        .map_err(|e| format!("binding {}: {e}", config.socket.display()))?;
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    if !config.quiet {
        eprintln!(
            "serve: listening on {} ({workers} workers)",
            config.socket.display()
        );
    }
    let inner = Inner {
        scheduler: Scheduler::new(),
        cost: Mutex::new(model),
        topologies: TopologyCache::new(),
        logs: Mutex::new(BTreeMap::new()),
        seq: AtomicU64::new(0),
        workers,
        quiet: config.quiet,
    };
    let abort_multiplier = config.abort_multiplier;
    let abort_floor_ms = config.abort_floor_ms;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| inner.worker_loop());
        }
        // Watchdog: scan the running set for budget blowups. Exits with the
        // drain, like the workers.
        scope.spawn(|| loop {
            for token in inner
                .scheduler
                .overdue_tokens(abort_multiplier, abort_floor_ms)
            {
                token.cancel();
            }
            if inner.scheduler.is_shutting_down() && inner.scheduler.drained() {
                return;
            }
            std::thread::park_timeout(Duration::from_millis(20));
        });
        // Accept loop: nonblocking + short sleeps so a shutdown request is
        // noticed promptly; every connection gets its own handler thread
        // (watch connections live as long as their campaign).
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    scope.spawn(|| inner.handle_connection(stream));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    if inner.scheduler.is_shutting_down() && inner.scheduler.drained() {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(_) => break,
            }
        }
    });
    let _ = std::fs::remove_file(&config.socket);
    if !config.quiet {
        eprintln!("serve: drained, exiting");
    }
    Ok(())
}
