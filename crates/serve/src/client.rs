//! Client side of the campaign service: one Unix-socket connection per
//! command, speaking the [`crate::proto`] line protocol. These functions
//! back the `scenario submit|watch|status|cancel|shutdown` subcommands and
//! double as the programmatic API the integration tests drive.

use crate::proto::{read_line, write_line, Event, Request, Response, SpecFormat};
use mdst_scenario::CampaignReport;
use std::io::{BufReader, BufWriter, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Sends one request, returns the server's single response line.
pub fn request(socket: &Path, request: &Request) -> Result<Response, String> {
    let stream =
        UnixStream::connect(socket).map_err(|e| format!("connecting {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cloning stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    write_line(&mut writer, request).map_err(|e| e.to_string())?;
    read_line(&mut reader)?.ok_or_else(|| "server closed the connection".to_string())
}

/// Submits a campaign spec; returns `(campaign id, run count)`.
pub fn submit(socket: &Path, spec: String, format: SpecFormat) -> Result<(u64, u64), String> {
    match request(socket, &Request::Submit { spec, format })? {
        Response::Submitted { campaign, runs } => Ok((campaign, runs)),
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// Watches a campaign: streams every event line (raw JSONL) to `sink` and
/// returns the aggregated [`CampaignReport`] once the campaign finishes.
/// Pass `from_seq = 0` for the full history.
pub fn watch(
    socket: &Path,
    campaign: u64,
    from_seq: u64,
    sink: &mut dyn Write,
) -> Result<CampaignReport, String> {
    let stream =
        UnixStream::connect(socket).map_err(|e| format!("connecting {}: {e}", socket.display()))?;
    let mut reader = BufReader::new(
        stream
            .try_clone()
            .map_err(|e| format!("cloning stream: {e}"))?,
    );
    let mut writer = BufWriter::new(stream);
    write_line(&mut writer, &Request::Watch { campaign, from_seq }).map_err(|e| e.to_string())?;
    match read_line::<Response>(&mut reader)?
        .ok_or_else(|| "server closed the connection".to_string())?
    {
        Response::Watching { .. } => {}
        Response::Error { message } => return Err(message),
        other => return Err(format!("unexpected response: {other:?}")),
    }
    loop {
        let Some(event) = read_line::<Event>(&mut reader)? else {
            return Err(format!(
                "event stream for campaign {campaign} ended before the campaign finished"
            ));
        };
        use serde::Serialize;
        writeln!(sink, "{}", event.to_value().to_json()).map_err(|e| e.to_string())?;
        if let Event::CampaignFinished { report, .. } = event {
            return Ok(report);
        }
    }
}

/// Fetches the service status snapshot.
pub fn status(socket: &Path) -> Result<crate::proto::ServeStatus, String> {
    match request(socket, &Request::Status)? {
        Response::Status(status) => Ok(status),
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// Cancels a campaign; returns the number of pending runs skipped.
pub fn cancel(socket: &Path, campaign: u64) -> Result<u64, String> {
    match request(socket, &Request::Cancel { campaign })? {
        Response::Cancelled { skipped_runs, .. } => Ok(skipped_runs),
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response: {other:?}")),
    }
}

/// Requests a graceful shutdown (drain, then exit).
pub fn shutdown(socket: &Path) -> Result<(), String> {
    match request(socket, &Request::Shutdown)? {
        Response::ShuttingDown => Ok(()),
        Response::Error { message } => Err(message),
        other => Err(format!("unexpected response: {other:?}")),
    }
}
