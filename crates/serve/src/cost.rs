//! Online cost model of the campaign scheduler.
//!
//! The scheduler wants to know, before executing a run, roughly how many
//! wall-clock milliseconds it will take — cheap runs first empties the queue
//! fastest, and a prediction gives the watchdog a budget to kill runaway
//! runs against. The model here is deliberately simple and robust: per
//! `(executor, batch)` bucket it fits one coefficient, *milliseconds per
//! unit of work*, where work is `n + m` of the input graph — the quantity
//! every phase of the protocol is at least linear in. The fit is an
//! exponentially weighted moving average over observed
//! [`RunRecord::exec_wall_ms`], so the model tracks the machine it runs on
//! and sharpens as campaigns flow through the server.
//!
//! Seeding: [`CostModel::seed_from_report`] folds a past `scenario run`
//! report (JSON) in before the first campaign, so the very first schedule is
//! already informed. Unseeded buckets predict `0.0` (no claim); the
//! scheduler then falls back to work-proportional ordering via
//! [`CostModel::work_hint`], which reads the spec's declared `n` before the
//! graph even exists.

use crate::proto::CostBucketStatus;
use mdst_scenario::{CampaignReport, RunOutcome, RunRecord, RunSpec};
use std::collections::BTreeMap;

/// Weight of a fresh observation against the running average.
const EWMA_ALPHA: f64 = 0.3;

/// Assumed edges-per-node ratio when only the declared `n` is known: the
/// sweep families in this workspace hover around average degree 4, so
/// `n + m ≈ 3n`.
const DEFAULT_WORK_PER_NODE: f64 = 3.0;

/// One fitted `(executor, batch)` bucket.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    ms_per_work: f64,
    samples: u64,
}

/// Per-bucket online cost model. See the [module docs](self).
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    buckets: BTreeMap<String, Bucket>,
    /// Observed `n + m` per graph label, so later runs on the same topology
    /// predict from the real size instead of the declared hint.
    graph_work: BTreeMap<String, f64>,
}

/// Bucket key of a run: executor label plus pool batch size (batch changes
/// the pool's drain cadence enough to deserve its own coefficient).
pub fn bucket_key(executor: &str, batch: usize) -> String {
    format!("{executor}/batch{batch}")
}

impl CostModel {
    /// An empty (fully unseeded) model.
    pub fn new() -> Self {
        CostModel::default()
    }

    /// Folds one finished run into the fit. Aborted, failed and zero-time
    /// runs are skipped — a run the watchdog killed measures the budget, not
    /// the work, and feeding it back would teach the model to kill more.
    pub fn observe(&mut self, record: &RunRecord) {
        let work = (record.n + record.m) as f64;
        if work >= 1.0 {
            self.graph_work.insert(record.graph.clone(), work);
        }
        let finished = matches!(
            record.outcome,
            RunOutcome::QuiescedCorrect | RunOutcome::QuiescedPartial
        );
        if !finished || record.exec_wall_ms <= 0.0 || work < 1.0 {
            return;
        }
        let rate = record.exec_wall_ms / work;
        let key = bucket_key(&record.executor, record.batch.0);
        self.buckets
            .entry(key)
            .and_modify(|b| {
                b.ms_per_work = (1.0 - EWMA_ALPHA) * b.ms_per_work + EWMA_ALPHA * rate;
                b.samples += 1;
            })
            .or_insert(Bucket {
                ms_per_work: rate,
                samples: 1,
            });
    }

    /// Seeds the model from a recorded campaign report, as if every run in
    /// it had just executed here.
    pub fn seed_from_report(&mut self, report: &CampaignReport) {
        for run in &report.runs {
            self.observe(run);
        }
    }

    /// Work estimate (`n + m`) for a spec: the observed size of its graph
    /// label when a run on it already finished, else the declared `n` hint
    /// scaled by an average-degree guess, else `0.0` (unknown).
    pub fn work_hint(&self, spec: &RunSpec) -> f64 {
        if let Some(&work) = self.graph_work.get(&spec.graph.label()) {
            return work;
        }
        match spec.graph.n_hint() {
            Some(n) => n as f64 * DEFAULT_WORK_PER_NODE,
            None => 0.0,
        }
    }

    /// Predicted wall milliseconds for a spec; `0.0` when the model has no
    /// fitted bucket or no size estimate (an unseeded prediction is no
    /// prediction — the watchdog must not kill on a guess).
    pub fn predict(&self, spec: &RunSpec) -> f64 {
        let work = self.work_hint(spec);
        if work <= 0.0 {
            return 0.0;
        }
        match self
            .buckets
            .get(&bucket_key(spec.executor.label(), spec.batch))
        {
            Some(bucket) => bucket.ms_per_work * work,
            None => 0.0,
        }
    }

    /// Scheduling cost of a spec: the prediction when seeded, else raw work
    /// so shortest-first still orders sensibly before any run completed
    /// (milliseconds and work units never compare against each other — the
    /// scheduler only ranks runs, it never mixes the scales across
    /// campaigns with different seeding... and even when it does, both
    /// scales are monotone in run size, which is all shortest-first needs).
    pub fn scheduling_cost(&self, spec: &RunSpec) -> f64 {
        let predicted = self.predict(spec);
        if predicted > 0.0 {
            predicted
        } else {
            self.work_hint(spec)
        }
    }

    /// Snapshot of every fitted bucket, for `scenario status`.
    pub fn status(&self) -> Vec<CostBucketStatus> {
        self.buckets
            .iter()
            .map(|(bucket, fit)| CostBucketStatus {
                bucket: bucket.clone(),
                ms_per_work: fit.ms_per_work,
                samples: fit.samples,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdst_scenario::prelude::{RunnerConfig, ScenarioMatrix};
    use mdst_scenario::run_campaign;

    fn sample_spec() -> Vec<RunSpec> {
        let matrix = ScenarioMatrix::from_toml_str(
            r#"
            [[scenario]]
            name = "s"
            graph = { family = "path", n = [8, 64] }
            seeds = [1]
            "#,
        )
        .unwrap();
        matrix.expand().unwrap()
    }

    #[test]
    fn unseeded_model_predicts_zero_but_still_orders_by_work() {
        let model = CostModel::new();
        let runs = sample_spec();
        assert_eq!(model.predict(&runs[0]), 0.0);
        assert!(model.scheduling_cost(&runs[0]) > 0.0, "declared-n fallback");
        assert!(
            model.scheduling_cost(&runs[1]) > model.scheduling_cost(&runs[0]),
            "bigger n must cost more even unseeded"
        );
    }

    #[test]
    fn observing_a_report_seeds_predictions_and_skips_aborted_runs() {
        let matrix = ScenarioMatrix::from_toml_str(
            r#"
            [[scenario]]
            name = "s"
            graph = { family = "path", n = 16 }
            seeds = [1, 2]
            "#,
        )
        .unwrap();
        let report = run_campaign(&matrix, &RunnerConfig::default()).unwrap();
        let mut model = CostModel::new();
        model.seed_from_report(&report);
        let runs = matrix.expand().unwrap();
        // Observed graph size now backs the prediction, and the bucket is
        // fitted, so the prediction is a real (positive) claim.
        assert!(model.predict(&runs[0]) > 0.0);
        let seeded = model.status();
        assert_eq!(seeded.len(), 1);
        assert_eq!(seeded[0].samples, 2);
        assert!(seeded[0].bucket.starts_with("sim/"));
        // An aborted rerun of the same cell must not move the fit.
        let mut aborted = report.runs[0].clone();
        aborted.outcome = RunOutcome::Aborted;
        aborted.exec_wall_ms = 1e6;
        model.observe(&aborted);
        assert_eq!(model.status()[0].samples, 2);
    }
}
