//! `scenario` — campaign CLI for the MDST scenario harness.
//!
//! ```text
//! scenario run <spec.toml|spec.json> [--out FILE.json] [--csv FILE.csv]
//!              [--jobs N] [--shuffle [SEED]] [--progress] [--quiet]
//! scenario expand <spec>      # print the resolved run list as JSON
//! scenario validate <spec>    # check the spec (graphs buildable, files readable)
//! scenario audit <trace-or-report.json> [--json] [--out FILE.json] [--quiet]
//! scenario diff <a.json> <b.json> [--wall-ms-tolerance PCT]
//!               [--prediction-tolerance PTS] [--markdown] [--quiet]
//! scenario serve [--socket PATH] [--workers N] [--abort-multiplier X]
//!                [--abort-floor-ms MS] [--seed-report FILE.json] [--quiet]
//! scenario submit <spec> [--socket PATH] [--watch] [--out FILE.json]
//! scenario watch <campaign-id> [--socket PATH] [--from-seq N] [--out FILE.json]
//! scenario status [--socket PATH]
//! scenario cancel <campaign-id> [--socket PATH]
//! scenario shutdown [--socket PATH]
//! ```
//!
//! The `serve` family turns the harness into a resident service (see the
//! `mdst_serve` crate docs): `serve` runs the server in the foreground,
//! `submit` sends a campaign spec over the Unix socket, `watch` streams the
//! campaign's JSONL event log (and, with `--out`, writes the final report —
//! the same JSON `scenario run --out` produces), `status` prints scheduler
//! and cache counters, `cancel` aborts a campaign, `shutdown` drains and
//! stops the server.
//!
//! `--jobs` (alias `--threads`) caps runner parallelism; when omitted, the
//! spec's `campaign.parallelism` key (or one thread per CPU) applies.
//! `--shuffle` claims runs in a seeded random order so long runs start early;
//! the seed is recorded in the report. `--progress` attaches a streaming
//! `mdst_core::Observer` to every run and prints one line per finished run.
//! `run` exits non-zero when any run fails, violates the paper's degree
//! bound, or (with the `audit` axis) trips the happens-before auditor, so
//! campaigns double as large-scale correctness checks in CI.
//!
//! `audit` replays a recorded message trace through the `mdst-analysis`
//! happens-before auditor offline. The input may be a serialized
//! `TraceRecorder` (`{"enabled": ..., "events": [...]}`), a bare event array,
//! any JSON object embedding a trace under a `"trace"` key (e.g. a pipeline
//! `RunReport`), or an object with a top-level `"events"` array. Findings
//! render as Markdown (default) or JSON (`--json` / `--out FILE`); the exit
//! code is non-zero iff the trace violates the happens-before discipline.
//!
//! `check` hands over to the `mdst-check` model checker: it exhaustively
//! verifies the protocol invariants on every connected topology up to
//! `--max-n` vertices (all interleavings, not one sampled schedule) and
//! exits non-zero on any violation or incomplete coverage, printing the
//! minimized counterexample schedule when one exists.
//!
//! `diff` compares a baseline report (first argument) against a candidate
//! (second argument) produced by the same spec at a different code revision
//! and exits non-zero on outcome or degree-bound regressions — or on a run
//! set mismatch, which makes "no regressions" unprovable.
//! `--wall-ms-tolerance PCT` additionally flags improvement-phase wall
//! times that grew more than PCT percent as regressions (off by default);
//! `--markdown` renders the findings as GitHub-flavored markdown tables for
//! PR comments.

use mdst_scenario::prelude::*;
use mdst_serve::proto::SpecFormat;
use serde::Value;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage:
  scenario run <spec.toml|spec.json> [--out FILE.json] [--csv FILE.csv] [--jobs N] [--shuffle [SEED]] [--progress] [--quiet]
  scenario expand <spec>
  scenario validate <spec>
  scenario check [--min-n N] [--max-n N] [--max-states N] [--max-depth N] [--crashes N] [--losses N] [--out FILE.json]
  scenario audit <trace-or-report.json> [--json] [--out FILE.json] [--quiet]
  scenario diff <baseline.json> <candidate.json> [--wall-ms-tolerance PCT] [--prediction-tolerance PTS] [--markdown] [--quiet]
  scenario serve [--socket PATH] [--workers N] [--abort-multiplier X] [--abort-floor-ms MS] [--seed-report FILE.json] [--quiet]
  scenario submit <spec.toml|spec.json> [--socket PATH] [--watch] [--out FILE.json]
  scenario watch <campaign-id> [--socket PATH] [--from-seq N] [--out FILE.json]
  scenario status [--socket PATH]
  scenario cancel <campaign-id> [--socket PATH]
  scenario shutdown [--socket PATH]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = match command.as_str() {
        "run" => cmd_run(rest),
        "expand" => cmd_expand(rest),
        "validate" => cmd_validate(rest),
        "check" => cmd_check(rest),
        "audit" => cmd_audit(rest),
        "diff" => cmd_diff(rest),
        "serve" => cmd_serve(rest),
        "submit" => cmd_submit(rest),
        "watch" => cmd_watch(rest),
        "status" => cmd_status(rest),
        "cancel" => cmd_cancel(rest),
        "shutdown" => cmd_shutdown(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(message) => {
            eprintln!("scenario: {message}");
            ExitCode::from(2)
        }
    }
}

/// Shared `--socket` handling of the serve-family subcommands: flag wins,
/// then the `SCENARIO_SOCKET` environment variable, then the temp-dir
/// default.
fn resolve_socket(flag: Option<String>) -> PathBuf {
    flag.map(PathBuf::from)
        .or_else(|| std::env::var_os("SCENARIO_SOCKET").map(PathBuf::from))
        .unwrap_or_else(mdst_serve::default_socket)
}

fn cmd_serve(args: &[String]) -> Result<ExitCode, String> {
    let mut config = mdst_serve::ServeConfig::default();
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            "--workers" => {
                config.workers = next_value(&mut it, "--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--abort-multiplier" => {
                config.abort_multiplier = next_value(&mut it, "--abort-multiplier")?
                    .parse()
                    .map_err(|_| "--abort-multiplier needs a number".to_string())?
            }
            "--abort-floor-ms" => {
                config.abort_floor_ms = next_value(&mut it, "--abort-floor-ms")?
                    .parse()
                    .map_err(|_| "--abort-floor-ms needs a number".to_string())?
            }
            "--seed-report" => config
                .seed_reports
                .push(PathBuf::from(next_value(&mut it, "--seed-report")?)),
            "--quiet" | "-q" => config.quiet = true,
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    config.socket = resolve_socket(socket);
    mdst_serve::serve(&config)?;
    Ok(ExitCode::SUCCESS)
}

fn next_value(it: &mut std::slice::Iter<'_, String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} needs a value"))
}

/// Loads a spec file as text, dispatching format on the `.json` extension
/// like `ScenarioMatrix::from_path` does.
fn read_spec(path: &str) -> Result<(String, SpecFormat), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let format = if path.to_ascii_lowercase().ends_with(".json") {
        SpecFormat::Json
    } else {
        SpecFormat::Toml
    };
    Ok((text, format))
}

fn cmd_submit(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = None;
    let mut spec = None;
    let mut watch = false;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            "--watch" => watch = true,
            "--out" | "-o" => out = Some(next_value(&mut it, "--out")?),
            other if !other.starts_with('-') && spec.is_none() => spec = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let spec = spec.ok_or_else(|| format!("missing spec file\n{USAGE}"))?;
    let socket = resolve_socket(socket);
    let (text, format) = read_spec(&spec)?;
    let (campaign, runs) = mdst_serve::client::submit(&socket, text, format)?;
    eprintln!("submitted campaign {campaign} ({runs} runs)");
    if !watch {
        println!("{campaign}");
        return Ok(ExitCode::SUCCESS);
    }
    stream_campaign(&socket, campaign, 0, out.as_deref())
}

/// Watches `campaign` from `from_seq`, forwarding JSONL to stdout; the final
/// report lands in `--out` (when given) and drives the exit code with the
/// same failure gates as `scenario run`.
fn stream_campaign(
    socket: &std::path::Path,
    campaign: u64,
    from_seq: u64,
    out: Option<&str>,
) -> Result<ExitCode, String> {
    let mut stdout = std::io::stdout();
    let report = mdst_serve::client::watch(socket, campaign, from_seq, &mut stdout)?;
    if let Some(path) = out {
        write_json(&report, path).map_err(|e| format!("writing {path}: {e}"))?;
    }
    eprintln!("{}", summarize(&report));
    if report.total.failures > 0
        || report.total.bound_violations > 0
        || report.total.audit_violations > 0
    {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_watch(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = None;
    let mut campaign = None;
    let mut from_seq = 0u64;
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            "--from-seq" => {
                from_seq = next_value(&mut it, "--from-seq")?
                    .parse()
                    .map_err(|_| "--from-seq needs a number".to_string())?
            }
            "--out" | "-o" => out = Some(next_value(&mut it, "--out")?),
            other if !other.starts_with('-') && campaign.is_none() => {
                campaign = Some(
                    other
                        .parse::<u64>()
                        .map_err(|_| format!("campaign id must be a number, got `{other}`"))?,
                )
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let campaign = campaign.ok_or_else(|| format!("missing campaign id\n{USAGE}"))?;
    stream_campaign(&resolve_socket(socket), campaign, from_seq, out.as_deref())
}

fn cmd_status(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let status = mdst_serve::client::status(&resolve_socket(socket))?;
    use serde::Serialize;
    println!("{}", status.to_value().to_json_pretty());
    Ok(ExitCode::SUCCESS)
}

fn cmd_cancel(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = None;
    let mut campaign = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            other if !other.starts_with('-') && campaign.is_none() => {
                campaign = Some(
                    other
                        .parse::<u64>()
                        .map_err(|_| format!("campaign id must be a number, got `{other}`"))?,
                )
            }
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let campaign = campaign.ok_or_else(|| format!("missing campaign id\n{USAGE}"))?;
    let skipped = mdst_serve::client::cancel(&resolve_socket(socket), campaign)?;
    eprintln!("campaign {campaign} cancelled ({skipped} pending runs skipped)");
    Ok(ExitCode::SUCCESS)
}

fn cmd_shutdown(args: &[String]) -> Result<ExitCode, String> {
    let mut socket = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--socket" => socket = Some(next_value(&mut it, "--socket")?),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    mdst_serve::client::shutdown(&resolve_socket(socket))?;
    eprintln!("server draining");
    Ok(ExitCode::SUCCESS)
}

struct RunArgs {
    spec: String,
    out: Option<String>,
    csv: Option<String>,
    threads: usize,
    shuffle: Option<u64>,
    progress: bool,
    quiet: bool,
}

/// Seed used by a bare `--shuffle` (no explicit seed argument).
const DEFAULT_SHUFFLE_SEED: u64 = 0x5EED;

fn parse_run_args(args: &[String]) -> Result<RunArgs, String> {
    let mut spec = None;
    let mut out = None;
    let mut csv = None;
    let mut threads = 0usize;
    let mut shuffle = None;
    let mut progress = false;
    let mut quiet = false;
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" | "-o" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                )
            }
            "--csv" => {
                csv = Some(
                    it.next()
                        .ok_or_else(|| "--csv needs a file path".to_string())?
                        .clone(),
                )
            }
            "--jobs" | "--threads" | "-j" => {
                threads = it
                    .next()
                    .ok_or_else(|| "--jobs needs a number".to_string())?
                    .parse()
                    .map_err(|_| "--jobs needs a number".to_string())?;
            }
            "--shuffle" => {
                // The seed argument is optional: `--shuffle 42` pins it,
                // bare `--shuffle` uses a fixed default (still recorded in
                // the report, so the claim order reproduces either way).
                shuffle = match it.peek().and_then(|next| next.parse::<u64>().ok()) {
                    Some(seed) => {
                        it.next();
                        Some(seed)
                    }
                    None => Some(DEFAULT_SHUFFLE_SEED),
                };
            }
            "--progress" => progress = true,
            "--quiet" | "-q" => quiet = true,
            other if !other.starts_with('-') && spec.is_none() => spec = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    Ok(RunArgs {
        spec: spec.ok_or_else(|| format!("missing spec file\n{USAGE}"))?,
        out,
        csv,
        threads,
        shuffle,
        progress,
        quiet,
    })
}

fn cmd_run(args: &[String]) -> Result<ExitCode, String> {
    let args = parse_run_args(args)?;
    let matrix = ScenarioMatrix::from_path(&args.spec).map_err(|e| e.to_string())?;
    let report = run_campaign(
        &matrix,
        &RunnerConfig {
            threads: args.threads,
            shuffle: args.shuffle,
            progress: args.progress,
        },
    )
    .map_err(|e| e.to_string())?;
    if let Some(path) = &args.out {
        write_json(&report, path).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &args.csv {
        write_csv(&report, path).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if args.out.is_none() && args.csv.is_none() {
        // No sink requested: the JSON report goes to stdout.
        println!("{}", campaign_to_json(&report));
    }
    if !args.quiet {
        eprintln!("{}", summarize(&report));
        for s in &report.scenarios {
            eprintln!(
                "  {}: {} runs, final degree {}/{}/{}, {} msgs",
                s.scenario,
                s.runs,
                s.final_degree.min,
                s.final_degree.median,
                s.final_degree.max,
                s.messages_total
            );
        }
    }
    if report.total.failures > 0
        || report.total.bound_violations > 0
        || report.total.audit_violations > 0
    {
        eprintln!(
            "scenario: {} failures, {} bound violations, {} audit violations",
            report.total.failures, report.total.bound_violations, report.total.audit_violations
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_expand(args: &[String]) -> Result<ExitCode, String> {
    let [spec] = args else {
        return Err(format!("expand takes exactly one spec file\n{USAGE}"));
    };
    let matrix = ScenarioMatrix::from_path(spec).map_err(|e| e.to_string())?;
    let runs = matrix.expand().map_err(|e| e.to_string())?;
    let items: Vec<Value> = runs
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("scenario".into(), Value::String(r.scenario.clone())),
                ("graph".into(), Value::String(r.graph.label())),
                ("initial".into(), Value::String(r.initial.clone())),
                ("delay".into(), Value::String(r.delay.label())),
                ("start".into(), Value::String(r.start.label())),
                ("faults".into(), Value::String(r.faults.label())),
                (
                    "executor".into(),
                    Value::String(r.executor.label().to_string()),
                ),
                ("audit".into(), Value::Bool(r.audit)),
                ("seed".into(), Value::UInt(r.seed)),
                ("root".into(), Value::UInt(r.root as u64)),
            ])
        })
        .collect();
    let doc = Value::Object(vec![
        ("campaign".into(), Value::String(matrix.name.clone())),
        ("run_count".into(), Value::UInt(runs.len() as u64)),
        ("runs".into(), Value::Array(items)),
    ]);
    println!("{}", doc.to_json_pretty());
    Ok(ExitCode::SUCCESS)
}

fn load_report(path: &str) -> Result<CampaignReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = serde::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    use serde::Deserialize;
    CampaignReport::from_value(&value).map_err(|e| format!("{path}: not a campaign report: {e}"))
}

fn cmd_diff(args: &[String]) -> Result<ExitCode, String> {
    let mut quiet = false;
    let mut markdown = false;
    let mut options = DiffOptions::default();
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quiet" | "-q" => quiet = true,
            "--markdown" => markdown = true,
            "--wall-ms-tolerance" => {
                let pct: f64 = it
                    .next()
                    .ok_or_else(|| "--wall-ms-tolerance needs a percentage".to_string())?
                    .parse()
                    .map_err(|_| "--wall-ms-tolerance needs a number (percent)".to_string())?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err(format!(
                        "--wall-ms-tolerance must be a non-negative percentage, got {pct}"
                    ));
                }
                options.wall_ms_tolerance = Some(pct);
            }
            "--prediction-tolerance" => {
                let pts: f64 = it
                    .next()
                    .ok_or_else(|| "--prediction-tolerance needs percentage points".to_string())?
                    .parse()
                    .map_err(|_| {
                        "--prediction-tolerance needs a number (percentage points)".to_string()
                    })?;
                if !pts.is_finite() || pts < 0.0 {
                    return Err(format!(
                        "--prediction-tolerance must be non-negative, got {pts}"
                    ));
                }
                options.prediction_tolerance = Some(pts);
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let [baseline, candidate] = paths.as_slice() else {
        return Err(format!(
            "diff takes exactly two report files (baseline, candidate)\n{USAGE}"
        ));
    };
    let base = load_report(baseline)?;
    let cand = load_report(candidate)?;
    let diff = diff_reports_with(&base, &cand, &options);
    if !quiet || diff.has_regressions() {
        if markdown {
            print!("{}", diff.render_markdown());
        } else {
            print!("{}", diff.render());
        }
    }
    if diff.has_regressions() {
        eprintln!(
            "scenario: candidate regressed ({} regressions, {} unmatched runs)",
            diff.regressions.len(),
            diff.only_in_baseline.len() + diff.only_in_candidate.len(),
        );
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_validate(args: &[String]) -> Result<ExitCode, String> {
    let [spec] = args else {
        return Err(format!("validate takes exactly one spec file\n{USAGE}"));
    };
    let matrix = match ScenarioMatrix::from_path(spec) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("invalid: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let runs = match matrix.expand() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("invalid: {e}");
            return Ok(ExitCode::FAILURE);
        }
    };
    let mut problems = Vec::new();
    if runs.is_empty() {
        problems.push("spec expands to zero runs".to_string());
    }
    // Each distinct graph source must build, and each run's pipeline
    // configuration must resolve; seeds only displace seeded families, so one
    // build per (source, first seed) is enough to validate parameters.
    let mut checked = std::collections::BTreeSet::new();
    for run in &runs {
        let label = run.graph.label();
        if checked.insert(label.clone()) {
            if let Err(e) = run.graph.build(run.seed) {
                problems.push(format!("graph {label}: {e}"));
            }
        }
        if let Err(e) = run.pipeline_config() {
            let msg = format!("run in `{}`: {e}", run.scenario);
            if !problems.contains(&msg) {
                problems.push(msg);
            }
        }
    }
    if problems.is_empty() {
        println!(
            "ok: campaign `{}`, {} scenarios, {} runs, {} distinct graphs",
            matrix.name,
            matrix.scenarios.len(),
            runs.len(),
            checked.len()
        );
        Ok(ExitCode::SUCCESS)
    } else {
        for p in &problems {
            eprintln!("invalid: {p}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Pulls a trace event list out of an arbitrary JSON document: a bare event
/// array, a serialized `TraceRecorder` (or any object with an `events`
/// array), or any wrapper embedding one under a `trace` key (e.g. a pipeline
/// `RunReport`).
fn trace_events_of(value: &Value) -> Option<Vec<mdst_netsim::TraceEvent>> {
    use serde::Deserialize;
    if value.as_array().is_some() {
        return Vec::<mdst_netsim::TraceEvent>::from_value(value).ok();
    }
    if let Some(trace) = value.get("trace") {
        return trace_events_of(trace);
    }
    if let Some(events) = value.get("events") {
        return Vec::<mdst_netsim::TraceEvent>::from_value(events).ok();
    }
    None
}

fn load_trace_events(path: &str) -> Result<Vec<mdst_netsim::TraceEvent>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let value = serde::from_json_str(&text).map_err(|e| format!("{path}: {e}"))?;
    trace_events_of(&value).ok_or_else(|| {
        format!(
            "{path}: no trace found (expected a serialized trace recorder, an object \
             with an `events` or `trace` key, or a bare event array)"
        )
    })
}

fn cmd_audit(args: &[String]) -> Result<ExitCode, String> {
    use serde::Serialize;
    let mut json = false;
    let mut out = None;
    let mut quiet = false;
    let mut path = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quiet" | "-q" => quiet = true,
            "--out" | "-o" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                )
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unexpected argument `{other}`\n{USAGE}")),
        }
    }
    let path = path.ok_or_else(|| format!("missing trace file\n{USAGE}"))?;
    let events = load_trace_events(&path)?;
    let report = mdst_analysis::audit_events(&events);
    if let Some(out_path) = &out {
        let mut doc = report.to_value().to_json_pretty();
        doc.push('\n');
        std::fs::write(out_path, doc).map_err(|e| format!("writing {out_path}: {e}"))?;
    }
    if !quiet {
        if json {
            println!("{}", report.to_value().to_json_pretty());
        } else {
            print!("{}", report.to_markdown());
        }
    }
    if report.is_clean() {
        Ok(ExitCode::SUCCESS)
    } else {
        eprintln!(
            "scenario: trace violates the happens-before discipline ({} findings)",
            report.findings.len()
        );
        Ok(ExitCode::FAILURE)
    }
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut min_n = 2usize;
    let mut max_n = 5usize;
    let mut out = None;
    let mut config = mdst_check::CheckConfig::default();
    let mut it = args.iter();
    let parse = |flag: &str, value: Option<&String>| -> Result<usize, String> {
        value
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse::<usize>()
            .map_err(|_| format!("{flag} needs an unsigned integer"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-n" => min_n = parse(arg, it.next())?,
            "--max-n" => max_n = parse(arg, it.next())?,
            "--max-states" => config.max_states = parse(arg, it.next())?,
            "--max-depth" => config.max_depth = parse(arg, it.next())?,
            "--crashes" => config.max_crashes = parse(arg, it.next())?,
            "--losses" => config.max_losses = parse(arg, it.next())?,
            "--out" | "-o" => {
                out = Some(
                    it.next()
                        .ok_or_else(|| "--out needs a file path".to_string())?
                        .clone(),
                )
            }
            other => return Err(format!("unknown check flag `{other}`\n{USAGE}")),
        }
    }
    if max_n > 6 {
        return Err("--max-n is capped at 6 (exhaustive enumeration)".to_string());
    }
    let report = mdst_check::sweep_connected(min_n, max_n, &config);
    for entry in &report.entries {
        let status = if !entry.report.passed() {
            "VIOLATION"
        } else if !entry.report.complete {
            "INCOMPLETE"
        } else {
            "ok"
        };
        println!(
            "{:<10} n={} m={} states={} quiescent-outcomes={} {}",
            entry.label,
            entry.n,
            entry.edges,
            entry.report.stats.states_explored,
            entry.report.outcomes.len(),
            status,
        );
    }
    println!(
        "checked {} topologies, {} distinct states",
        report.entries.len(),
        report.total_states
    );
    if let Some(path) = &out {
        std::fs::write(path, report.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
        println!("report written to {path}");
    }
    if let Some(bad) = report.first_violation() {
        let cex = bad
            .report
            .violation
            .as_ref()
            .expect("failed entries carry a counterexample");
        eprintln!("violation on {}: {}", bad.label, cex.violation);
        for event in &cex.schedule {
            eprintln!("  {event}");
        }
        return Ok(ExitCode::FAILURE);
    }
    if !report.all_complete {
        eprintln!("state budget exhausted before full coverage — raise --max-states");
        return Ok(ExitCode::FAILURE);
    }
    println!("all topologies verified");
    Ok(ExitCode::SUCCESS)
}
