//! Shared fixtures of experiment E11: streaming two-pass CSR ingestion
//! measured against the legacy whole-file path, with an accounted peak-bytes
//! model.
//!
//! The workload is a seeded `random_connected(n, n/2)` graph serialised to an
//! edge-list file (and a gzip twin written by the vendored encoder). Three
//! ingestion paths read it back:
//!
//! * **legacy** — the pre-streaming rhythm: the whole file in one `String`,
//!   every edge parsed into a `GraphBuilder` (a `BTreeSet` edge set), then
//!   one CSR assembly at the end. Peak memory carries the text *and* the
//!   edge set *and* the finished CSR at once.
//! * **streaming** — [`mdst_scenario::io::load_graph`]: two passes over the
//!   file, each line parsed into a pre-sized CSR row by counting sort. No
//!   intermediate edge vector ever exists.
//! * **streaming gzip** — the same two passes over the `.el.gz` twin through
//!   the chunked decoder, which the harness wraps in a high-water probe: the
//!   decoder's internal buffering is polled after every read, and E11
//!   *asserts* it stays under a fixed cap regardless of edge count — the
//!   machine-checked form of "the gzip path never materialises the stream".
//!
//! **Peak bytes are accounted, not traced**: the workspace forbids `unsafe`,
//! so a counting `#[global_allocator]` is off the table. Each path instead
//! reports the documented sum of its long-lived allocations (input text,
//! edge-set nodes, CSR arrays, streaming cursors, decoder buffers). The
//! model intentionally omits transient parser locals — identical on every
//! path and bounded by one line — so the *ratio* between paths is the honest
//! quantity, and it is what the table's final column shows.

use mdst::prelude::*;
use mdst_scenario::io::{self, GraphFormat, IoError};
use std::io::{BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Node counts of the full E11 ingestion sweep.
pub const E11_NODES: [usize; 3] = [10_000, 100_000, 1_000_000];

/// Shrunk node counts used when `BENCH_SMOKE` is set.
pub const E11_SMOKE_NODES: [usize; 3] = [500, 2_000, 8_000];

/// Cap on the gzip decoder's internal buffering (input chunk plus the 32 KiB
/// window plus pending output), asserted per run: a decoder that buffered
/// the stream would blow through this on the first full-size workload.
pub const DECODER_HIGH_WATER_CAP: usize = 256 * 1024;

/// The node counts E11 sweeps in the current mode.
pub fn e11_nodes() -> [usize; 3] {
    if crate::fabric::smoke() {
        E11_SMOKE_NODES
    } else {
        E11_NODES
    }
}

/// One measured ingestion run.
pub struct IngestSample {
    /// Wall-clock time of the ingestion call.
    pub wall: Duration,
    /// Accounted peak bytes (see the module docs for the model).
    pub peak_bytes: usize,
    /// The decoder's buffering high-water mark (gzip path only).
    pub decoder_high_water: Option<usize>,
    /// Edges in the ingested graph (sanity cross-check between paths).
    pub edges: usize,
}

/// Serialises workload `n` as `<dir>/e11_<n>.el` plus a gzip twin, returning
/// `(plain path, gzip path, plain byte size)`.
pub fn write_workload(n: usize, dir: &Path) -> std::io::Result<(PathBuf, PathBuf, usize)> {
    let graph = generators::random_connected(n, n / 2, 11)
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    let mut text = String::new();
    for (u, v) in graph.edges() {
        text.push_str(&format!("{} {}\n", u.index(), v.index()));
    }
    let plain = dir.join(format!("e11_{n}.el"));
    std::fs::write(&plain, &text)?;
    let gz = dir.join(format!("e11_{n}.el.gz"));
    let mut enc = flate2::write::GzEncoder::new(
        std::io::BufWriter::new(std::fs::File::create(&gz)?),
        flate2::Compression::fast(),
    );
    enc.write_all(text.as_bytes())?;
    enc.finish()?.into_inner().map_err(|e| e.into_error())?;
    Ok((plain, gz, text.len()))
}

/// The legacy whole-file ingestion: one `String`, one [`GraphBuilder`], one
/// build. Kept here (the production loader streams now) as the measured
/// baseline.
pub fn legacy_ingest(path: &Path) -> Result<(Graph, IngestSample), IoError> {
    let started = Instant::now();
    let text = std::fs::read_to_string(path).map_err(|e| IoError::Io(e.to_string()))?;
    let mut max_node = 0usize;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for line in text.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(u), Some(v)) = (it.next(), it.next()) else {
            continue;
        };
        let (Ok(u), Ok(v)) = (u.parse::<usize>(), v.parse::<usize>()) else {
            continue;
        };
        max_node = max_node.max(u).max(v);
        edges.push((u, v));
    }
    let mut b = GraphBuilder::new(max_node + 1);
    for &(u, v) in &edges {
        b.add_edge_idempotent(NodeId::new(u), NodeId::new(v))
            .map_err(io::IoError::Graph)?;
    }
    let edge_count = b.edge_count();
    let graph = b.build();
    let wall = started.elapsed();
    // Accounted peak: the input text, the parsed edge vector, the builder's
    // `BTreeSet` (16 payload bytes per edge plus ~50% amortised tree
    // overhead), and the finished CSR — all live simultaneously at `build`.
    let peak_bytes = text.capacity()
        + edges.capacity() * std::mem::size_of::<(usize, usize)>()
        + edge_count * 12
        + graph.memory_bytes();
    let sample = IngestSample {
        wall,
        peak_bytes,
        decoder_high_water: None,
        edges: graph.edge_count(),
    };
    Ok((graph, sample))
}

/// The streaming production path over the plain edge list.
pub fn streaming_ingest(path: &Path) -> Result<(Graph, IngestSample), IoError> {
    let started = Instant::now();
    let graph = io::load_graph(path, Some(GraphFormat::EdgeList))?;
    let wall = started.elapsed();
    let sample = IngestSample {
        wall,
        // Accounted peak: the finished CSR plus the builder's placement
        // cursors (4 bytes per node). No edge vector, no input copy.
        peak_bytes: graph.memory_bytes() + 4 * graph.node_count(),
        decoder_high_water: None,
        edges: graph.edge_count(),
    };
    Ok((graph, sample))
}

/// A reader that forwards to the chunked gzip decoder and records the
/// decoder's buffering high-water mark across every read.
struct HighWaterProbe<R> {
    inner: flate2::read::GzDecoder<R>,
    peak: usize,
}

impl<R: std::io::BufRead> Read for HighWaterProbe<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.peak = self.peak.max(self.inner.buffer_high_water());
        Ok(n)
    }
}

/// The streaming path over the gzip twin, with the decoder's buffering
/// polled after every read. Returns the observed high-water mark so E11 can
/// assert it against [`DECODER_HIGH_WATER_CAP`].
pub fn streaming_gz_ingest(path: &Path) -> Result<(Graph, IngestSample), IoError> {
    use std::cell::Cell;
    let high_water = Cell::new(0usize);
    let started = Instant::now();
    let graph = io::stream_edge_list(|| {
        let file = std::fs::File::open(path).map_err(|e| IoError::Io(e.to_string()))?;
        let probe = HighWaterProbe {
            inner: flate2::read::GzDecoder::new(BufReader::new(file)),
            peak: 0,
        };
        Ok(BufReader::new(ProbeGuard {
            probe,
            peak: &high_water,
        }))
    })?;
    let wall = started.elapsed();
    let peak = high_water.get();
    let sample = IngestSample {
        wall,
        peak_bytes: graph.memory_bytes() + 4 * graph.node_count() + peak,
        decoder_high_water: Some(peak),
        edges: graph.edge_count(),
    };
    Ok((graph, sample))
}

/// Publishes a [`HighWaterProbe`]'s running peak into a `Cell` the caller
/// retains — the probe itself is consumed by the ingestion call (each pass
/// opens a fresh decoder), so the peak must escape through a side channel.
struct ProbeGuard<'a, R> {
    probe: HighWaterProbe<R>,
    peak: &'a std::cell::Cell<usize>,
}

impl<R: std::io::BufRead> Read for ProbeGuard<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.probe.read(buf)?;
        self.peak.set(self.peak.get().max(self.probe.peak));
        Ok(n)
    }
}
