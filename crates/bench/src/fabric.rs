//! Shared fixtures of experiment E10: the pool's batched message fabric
//! measured against the legacy per-message send path. Both the criterion
//! bench (`benches/message_fabric.rs`) and the harness table
//! ([`crate::experiments::e10_message_fabric`]) drive *these* workloads, so
//! the two reports can never drift apart.
//!
//! The workload is a hop-bounded **echo flood**: node 0 emits a token with a
//! TTL, and every delivery with TTL > 0 re-broadcasts a decremented copy to
//! all neighbours except the sender. The total message count is the number
//! of non-backtracking walks from the origin of length ≤ TTL — a purely
//! local, schedule-independent quantity — so both fabrics move *exactly* the
//! same load and the timing difference is pure send-path cost. Unlike a
//! one-shot broadcast (every destination distinct, nothing to coalesce), the
//! echo flood's quanta re-broadcast every drained token to the same
//! neighbour set, which is precisely the repeated-destination traffic the
//! coalesced flush exists for: one destination lock per *group* versus one
//! lock plus one SeqCst RMW per *message* on the legacy path.

use mdst::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Node counts of the full E10 flood workloads.
pub const E10_NODES: [usize; 2] = [5_000, 50_000];

/// Shrunk node counts used when `BENCH_SMOKE` is set, so CI can exercise the
/// full experiment path (table, JSON artifact) in seconds.
pub const E10_SMOKE_NODES: [usize; 2] = [600, 1_500];

/// Whether smoke mode is on: the `BENCH_SMOKE` environment variable is set
/// to a non-empty value.
pub fn smoke() -> bool {
    std::env::var_os("BENCH_SMOKE").is_some_and(|v| !v.is_empty())
}

/// The node counts E10 sweeps in the current mode.
pub fn e10_nodes() -> [usize; 2] {
    if smoke() {
        E10_SMOKE_NODES
    } else {
        E10_NODES
    }
}

/// The echo-flood TTL used at `n` nodes, chosen so the flood moves roughly
/// ten messages per node (the count grows geometrically with the TTL at
/// branching factor ≈ average degree − 1, so one extra hop per decade).
pub fn rounds(n: usize) -> u8 {
    if n >= 20_000 {
        6
    } else if n >= 5_000 {
        5
    } else {
        4
    }
}

/// The E10 flood workload at `n` nodes: a random connected graph with `4n`
/// extra edges (average degree ≈ 10). The density keeps the echo flood's
/// re-broadcast fan-out — and with it the per-destination send groups the
/// batched fabric coalesces — realistically wide; a near-tree graph would
/// degenerate into single-message quanta that no fabric can batch.
pub fn workload(n: usize) -> Arc<Graph> {
    Arc::new(generators::random_connected(n, 4 * n, 11).expect("workload generation"))
}

/// The echo-flood token: a hop budget, sized like a small identity-carrying
/// message on the wire.
#[derive(Debug, Clone)]
pub struct EchoToken {
    /// Remaining hops; a delivery with `ttl == 0` is absorbed silently.
    pub ttl: u8,
}

impl NetMessage for EchoToken {
    fn kind(&self) -> &'static str {
        "Echo"
    }
    fn encoded_bits(&self) -> usize {
        8
    }
}

/// The echo-flood node automaton: node 0 starts the flood, everyone relays
/// while the hop budget lasts. Stateless on purpose — every delivered token
/// with TTL > 0 re-broadcasts, so a quantum that drains `k` tokens sends `k`
/// copies down each outgoing link and the fabric sees genuine
/// per-destination batches.
pub struct EchoFloodSt {
    id: NodeId,
    ttl: u8,
}

impl EchoFloodSt {
    /// Node automaton for `id`, flooding `ttl` hops from node 0.
    pub fn new(id: NodeId, ttl: u8) -> Self {
        EchoFloodSt { id, ttl }
    }
}

impl Protocol for EchoFloodSt {
    type Message = EchoToken;

    fn on_start(&mut self, ctx: &mut dyn Context<EchoToken>) {
        if self.id == NodeId(0) {
            // Index the neighbour slice per send instead of materialising a
            // `Vec`: the handler allocating per quantum would dominate the
            // very send-path cost E10 isolates.
            for i in 0..ctx.neighbors().len() {
                let to = ctx.neighbors()[i];
                ctx.send(to, EchoToken { ttl: self.ttl });
            }
        }
    }

    fn on_message(&mut self, from: NodeId, msg: EchoToken, ctx: &mut dyn Context<EchoToken>) {
        if msg.ttl > 0 {
            for i in 0..ctx.neighbors().len() {
                let to = ctx.neighbors()[i];
                if to != from {
                    ctx.send(to, EchoToken { ttl: msg.ttl - 1 });
                }
            }
        }
    }
}

/// One measured flood run on the pool.
pub struct FabricSample {
    /// Messages delivered (the non-backtracking-walk count of the graph —
    /// identical across fabrics, batch sizes and backends).
    pub messages: u64,
    /// First wake-up to quiescence, as reported by the pool.
    pub wall: Duration,
}

impl FabricSample {
    /// Delivered messages per second of pool wall time.
    pub fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Runs the echo flood over `graph` on the pool: `coalesce = true` for the
/// batched fabric, `false` for the legacy per-message path; `batch = 0`
/// means [`PoolRuntime::DEFAULT_BATCH`].
pub fn flood_on_pool(graph: &Arc<Graph>, coalesce: bool, batch: usize) -> FabricSample {
    let ttl = rounds(graph.node_count());
    let run = PoolRuntime::run(
        graph,
        |id, _| EchoFloodSt::new(id, ttl),
        &PoolConfig {
            coalesce,
            batch,
            ..Default::default()
        },
    )
    .expect("flood run");
    assert_eq!(run.status, ExecStatus::Quiesced);
    FabricSample {
        messages: run.metrics.messages_total,
        wall: run.wall_time,
    }
}

/// Best (fastest) of `reps` flood runs — the standard noise guard for a
/// one-shot harness table.
pub fn best_of(graph: &Arc<Graph>, coalesce: bool, batch: usize, reps: usize) -> FabricSample {
    let mut best: Option<FabricSample> = None;
    for _ in 0..reps.max(1) {
        let sample = flood_on_pool(graph, coalesce, batch);
        if best.as_ref().is_none_or(|b| sample.wall < b.wall) {
            best = Some(sample);
        }
    }
    best.expect("reps >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_fabrics_move_the_same_deterministic_load() {
        let graph = workload(300);
        let batched = flood_on_pool(&graph, true, 0);
        let legacy = flood_on_pool(&graph, false, 0);
        assert_eq!(legacy.messages, batched.messages);
        assert!(batched.messages > 0);
        assert!(batched.msgs_per_sec() > 0.0);
    }

    #[test]
    fn echo_flood_count_matches_the_simulator() {
        // The echo flood's per-node send/receive profile is schedule
        // independent (every delivery's fan-out is a local function of the
        // arriving token), so the comparison pins down the batched fabric's
        // split accounting — `record_sent_batch` / `record_received_batch` /
        // `record_payload` — column by column against the simulator's
        // per-message bookkeeping, not just in total.
        let graph = workload(300);
        let ttl = rounds(graph.node_count());
        let mut sim = Simulator::new(&graph, SimConfig::default(), |id, _| {
            EchoFloodSt::new(id, ttl)
        })
        .expect("sim");
        sim.run().expect("sim run");
        let run = PoolRuntime::run(
            &graph,
            |id, _| EchoFloodSt::new(id, ttl),
            &PoolConfig::default(),
        )
        .expect("pool run");
        assert_eq!(run.status, ExecStatus::Quiesced);
        assert_eq!(run.metrics.messages_total, sim.metrics().messages_total);
        assert_eq!(run.metrics.messages_by_kind, sim.metrics().messages_by_kind);
        assert_eq!(run.metrics.bits_total, sim.metrics().bits_total);
        assert_eq!(run.metrics.sent_per_node, sim.metrics().sent_per_node);
        assert_eq!(
            run.metrics.received_per_node,
            sim.metrics().received_per_node
        );
    }
}
