//! Shared fixtures of experiment E9: the CSR graph substrate measured against
//! the former nested-vector adjacency. Both the criterion bench
//! (`benches/graph_substrate.rs`) and the harness table
//! ([`crate::experiments::e9_graph_substrate`]) compare against *this* one
//! baseline replica, so the two reports can never drift apart.

use mdst::graph::EdgeId;
use mdst::prelude::*;

/// Node count of the E9 workload.
pub const E9_NODES: usize = 5_000;

/// The E9 workload: a 5,000-node random connected graph with 3n extra edges,
/// flattened to its edge list (the input both builders consume).
pub fn e9_workload_edges() -> (usize, Vec<(NodeId, NodeId)>) {
    let graph = generators::random_connected(E9_NODES, 3 * E9_NODES, 17).unwrap();
    (graph.node_count(), graph.edges().collect())
}

/// The pre-CSR build, replicated faithfully end to end: the old
/// `GraphBuilder` also deduplicated through a `BTreeSet`, then filled
/// per-node `Vec`s and sorted each row by neighbour — so both sides of the
/// construction comparison pay the same edge-set maintenance and differ only
/// in the assembly.
pub fn build_baseline_adjacency(
    n: usize,
    edges: &[(NodeId, NodeId)],
) -> Vec<Vec<(NodeId, EdgeId)>> {
    let mut set = std::collections::BTreeSet::new();
    for &(u, v) in edges {
        set.insert(if u < v { (u, v) } else { (v, u) });
    }
    let mut adj: Vec<Vec<(NodeId, EdgeId)>> = vec![Vec::new(); n];
    for (i, (u, v)) in set.into_iter().enumerate() {
        adj[u.index()].push((v, EdgeId::new(i)));
        adj[v.index()].push((u, EdgeId::new(i)));
    }
    for row in &mut adj {
        row.sort_unstable_by_key(|&(v, _)| v);
    }
    adj
}

/// The CSR build from the same edge list, through the real `GraphBuilder`.
pub fn build_csr(n: usize, edges: &[(NodeId, NodeId)]) -> Graph {
    let mut builder = GraphBuilder::new(n);
    for &(u, v) in edges {
        builder.add_edge(u, v).unwrap();
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_and_csr_agree_on_the_workload() {
        let (n, edges) = e9_workload_edges();
        let graph = build_csr(n, &edges);
        let baseline = build_baseline_adjacency(n, &edges);
        assert_eq!(graph.node_count(), n);
        for u in graph.nodes() {
            let row: Vec<(NodeId, EdgeId)> = graph.neighbors_with_edges(u).collect();
            assert_eq!(row, baseline[u.index()]);
        }
    }
}
