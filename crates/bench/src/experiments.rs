//! The experiments of DESIGN.md §6, one function per table.
//!
//! Every function is deterministic (fixed seeds) and returns a [`Table`] so
//! the harness binary, the tests and EXPERIMENTS.md all see the same numbers.

use crate::table::Table;
use mdst::core::distributed::MdstNode;
use mdst::prelude::*;
use std::sync::Arc;
use std::time::Instant;

fn fmt_f(x: f64) -> String {
    format!("{x:.2}")
}

/// E1 — messages vs the paper's `O((k − k*)·m)` budget on G(n, p) sweeps and
/// on the star-plus-path worst case.
pub fn e1_message_scaling() -> Table {
    let mut table = Table::new(
        "E1: message complexity vs (k - k* + 1) * m",
        &[
            "workload", "n", "m", "k", "k*", "rounds", "messages", "budget", "ratio",
        ],
    );
    let mut workloads: Vec<(String, Arc<Graph>)> = Vec::new();
    for &n in &[32usize, 64, 128] {
        for &p in &[0.05f64, 0.15] {
            workloads.push((
                format!("gnp({n},{p})"),
                Arc::new(generators::gnp_connected(n, p, 1000 + n as u64).unwrap()),
            ));
        }
        workloads.push((
            format!("star+path({n})"),
            Arc::new(generators::star_with_leaf_edges(n).unwrap()),
        ));
    }
    for (name, graph) in workloads {
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k = initial.max_degree();
        let k_star = run.final_tree.max_degree();
        let budget = ((k - k_star + 1) * graph.edge_count()) as u64;
        table.add_row(vec![
            name,
            graph.node_count().to_string(),
            graph.edge_count().to_string(),
            k.to_string(),
            k_star.to_string(),
            run.rounds.to_string(),
            run.metrics.messages_total.to_string(),
            budget.to_string(),
            fmt_f(run.metrics.messages_total as f64 / budget as f64),
        ]);
    }
    table
}

/// E2 — time (causal/quiescence under unit delays) vs the paper's
/// `O((k − k*)·n)` budget.
pub fn e2_time_scaling() -> Table {
    let mut table = Table::new(
        "E2: time complexity vs (k - k* + 1) * n",
        &["workload", "n", "k", "k*", "time", "budget", "ratio"],
    );
    for &n in &[16usize, 32, 64, 128] {
        let graph = Arc::new(generators::star_with_leaf_edges(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k = initial.max_degree();
        let k_star = run.final_tree.max_degree();
        let budget = ((k - k_star + 1) * n) as u64;
        table.add_row(vec![
            format!("star+path({n})"),
            n.to_string(),
            k.to_string(),
            k_star.to_string(),
            run.metrics.quiescence_time.to_string(),
            budget.to_string(),
            fmt_f(run.metrics.quiescence_time as f64 / budget as f64),
        ]);
    }
    table
}

/// E3 — per-round message breakdown by kind (the per-step cost table of §4.2).
pub fn e3_round_breakdown() -> Table {
    let mut table = Table::new(
        "E3: messages by kind, total and per round (star+path(32), greedy-hub seed)",
        &["kind", "total", "per round", "paper per-round bound"],
    );
    let graph = Arc::new(generators::star_with_leaf_edges(32).unwrap());
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
    let rounds = run.rounds as f64;
    let n = graph.node_count();
    let m = graph.edge_count();
    let bound = |kind: &str| -> String {
        match kind {
            "SearchInit" | "DegreeReport" | "MoveRoot" | "Update" | "UpdateDone" | "Stop" => {
                format!("n-1 = {}", n - 1)
            }
            "BFS" | "BFSReply" | "Cut" | "BFSBack" => format!("2m = {}", 2 * m),
            "Child" | "ChildAck" => "1".to_string(),
            _ => String::new(),
        }
    };
    for (kind, count) in &run.metrics.messages_by_kind {
        table.add_row(vec![
            kind.clone(),
            count.to_string(),
            fmt_f(*count as f64 / rounds),
            bound(kind),
        ]);
    }
    table.add_row(vec![
        "TOTAL".to_string(),
        run.metrics.messages_total.to_string(),
        fmt_f(run.metrics.messages_total as f64 / rounds),
        format!("O(m + n), m = {m}, n = {n}"),
    ]);
    table
}

/// E4 — message size (bits) vs n: the `O(log n)` claim.
pub fn e4_message_size() -> Table {
    let mut table = Table::new(
        "E4: message size vs n (bits; paper: O(log n), at most ~4 identities)",
        &["n", "log2(n)", "max bits", "mean bits"],
    );
    for &n in &[8usize, 16, 32, 64, 128, 256] {
        let graph = Arc::new(generators::star_with_leaf_edges(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        table.add_row(vec![
            n.to_string(),
            ((n as f64).log2().ceil() as usize).to_string(),
            run.metrics.bits_max.to_string(),
            fmt_f(run.metrics.bits_mean()),
        ]);
    }
    table
}

/// E5 — approximation quality: distributed result vs exact optimum (small
/// instances) and vs the combinatorial lower bound (larger ones).
pub fn e5_approximation_quality() -> Table {
    let mut table = Table::new(
        "E5: approximation quality (final degree vs optimum / lower bound)",
        &[
            "workload",
            "n",
            "initial k",
            "final",
            "optimum",
            "LB",
            "gap to opt",
        ],
    );
    let small: Vec<(String, Arc<Graph>)> = vec![
        (
            "complete(10)".into(),
            Arc::new(generators::complete(10).unwrap()),
        ),
        (
            "star+path(12)".into(),
            Arc::new(generators::star_with_leaf_edges(12).unwrap()),
        ),
        ("wheel(10)".into(), Arc::new(generators::wheel(10).unwrap())),
        (
            "K(3,7)".into(),
            Arc::new(generators::complete_bipartite(3, 7).unwrap()),
        ),
        ("petersen".into(), Arc::new(generators::petersen().unwrap())),
        (
            "broom(4,2)".into(),
            Arc::new(generators::high_optimum(4, 2).unwrap()),
        ),
        (
            "gnp(12,0.25)#1".into(),
            Arc::new(generators::gnp_connected(12, 0.25, 1).unwrap()),
        ),
        (
            "gnp(12,0.25)#2".into(),
            Arc::new(generators::gnp_connected(12, 0.25, 2).unwrap()),
        ),
        (
            "gnp(12,0.25)#3".into(),
            Arc::new(generators::gnp_connected(12, 0.25, 3).unwrap()),
        ),
    ];
    for (name, graph) in small {
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        let final_degree = run.final_tree.max_degree();
        table.add_row(vec![
            name,
            graph.node_count().to_string(),
            initial.max_degree().to_string(),
            final_degree.to_string(),
            optimum.to_string(),
            degree_lower_bound(&graph).to_string(),
            (final_degree - optimum).to_string(),
        ]);
    }
    // Larger instances: exact is out of reach, report against the lower bound.
    for &n in &[64usize, 128] {
        let graph = Arc::new(generators::gnp_connected(n, 0.08, 5).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        table.add_row(vec![
            format!("gnp({n},0.08)"),
            n.to_string(),
            initial.max_degree().to_string(),
            run.final_tree.max_degree().to_string(),
            "-".to_string(),
            degree_lower_bound(&graph).to_string(),
            "-".to_string(),
        ]);
    }
    table
}

/// E6 — messages on complete graphs vs the Korach–Moran–Zaks Ω(n²/k) bound.
pub fn e6_kmz_comparison() -> Table {
    let mut table = Table::new(
        "E6: complete graphs, messages vs the KMZ lower bound n^2/k",
        &["n", "m", "k*", "messages", "n^2/k*", "ratio"],
    );
    for &n in &[8usize, 16, 32, 64] {
        let graph = Arc::new(generators::complete(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let k_star = run.final_tree.max_degree();
        let bound = kmz_message_lower_bound(n, k_star);
        table.add_row(vec![
            n.to_string(),
            graph.edge_count().to_string(),
            k_star.to_string(),
            run.metrics.messages_total.to_string(),
            fmt_f(bound),
            fmt_f(kmz_ratio(run.metrics.messages_total, n, k_star)),
        ]);
    }
    table
}

/// E7 — sensitivity to the initial spanning tree: rounds and messages per
/// construction on the same graph.
///
/// Rebased on the `mdst-scenario` campaign engine: the sweep is a declarative
/// matrix (one graph, the `initial` axis carrying every construction) executed
/// by the parallel runner, and the table rows are its per-run records. New
/// experiments should follow this pattern instead of hand-rolled loops.
pub fn e7_initial_tree_sensitivity() -> Table {
    use mdst_scenario::prelude::*;

    let mut table = Table::new(
        "E7: initial-tree sensitivity (gnp(48, 0.1), same graph, every construction)",
        &[
            "initial tree",
            "k",
            "k*",
            "rounds",
            "improve msgs",
            "construct msgs",
        ],
    );
    let spec = r#"
        [campaign]
        name = "e7-initial-tree-sensitivity"

        [[scenario]]
        name = "initial-axis"
        graph = { family = "gnp_connected", n = 48, p = 0.1, seed = 77 }
        initial = ["greedy_hub", "bfs", "dfs", "random", "flooding", "token"]
        seeds = [0]
    "#;
    let matrix = ScenarioMatrix::from_toml_str(spec).expect("embedded spec is valid");
    let report = run_campaign(&matrix, &RunnerConfig::default()).expect("campaign runs");
    assert_eq!(report.total.failures, 0, "E7 campaign must not fail");
    for run in &report.runs {
        table.add_row(vec![
            run.initial.clone(),
            run.initial_degree.to_string(),
            run.final_degree.to_string(),
            run.rounds.to_string(),
            run.messages.to_string(),
            if run.construction_messages == 0 {
                "0 (centralized)".to_string()
            } else {
                run.construction_messages.to_string()
            },
        ]);
    }
    table
}

/// A1 — distributed protocol vs the sequential baselines on shared instances.
pub fn a1_algorithm_comparison() -> Table {
    let mut table = Table::new(
        "A1: distributed vs sequential baselines (final degree)",
        &[
            "workload",
            "initial k",
            "distributed",
            "paper rule (seq)",
            "FR (seq)",
            "LB",
        ],
    );
    let workloads: Vec<(String, Arc<Graph>)> = vec![
        (
            "complete(24)".into(),
            Arc::new(generators::complete(24).unwrap()),
        ),
        (
            "star+path(24)".into(),
            Arc::new(generators::star_with_leaf_edges(24).unwrap()),
        ),
        (
            "grid(5x5)".into(),
            Arc::new(generators::grid(5, 5).unwrap()),
        ),
        (
            "hypercube(5)".into(),
            Arc::new(generators::hypercube(5).unwrap()),
        ),
        (
            "gnp(40,0.1)".into(),
            Arc::new(generators::gnp_connected(40, 0.1, 13).unwrap()),
        ),
        (
            "geometric(40)".into(),
            Arc::new(generators::random_geometric_connected(40, 0.25, 13).unwrap()),
        ),
    ];
    for (name, graph) in workloads {
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let dist = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let paper = paper_local_search(&graph, &initial).unwrap();
        let fr = furer_raghavachari(&graph, &initial, true).unwrap();
        table.add_row(vec![
            name,
            initial.max_degree().to_string(),
            dist.final_tree.max_degree().to_string(),
            paper.tree.max_degree().to_string(),
            fr.tree.max_degree().to_string(),
            degree_lower_bound(&graph).to_string(),
        ]);
    }
    table
}

/// A2 — delay-model sensitivity: the outcome is identical, only the
/// (simulated) completion clock changes.
pub fn a2_delay_sensitivity() -> Table {
    let mut table = Table::new(
        "A2: delay-model sensitivity (gnp(32, 0.12), greedy-hub seed)",
        &[
            "delay model",
            "final degree",
            "messages",
            "quiescence clock",
        ],
    );
    let graph = Arc::new(generators::gnp_connected(32, 0.12, 8).unwrap());
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    let models: Vec<(String, DelayModel)> = vec![
        ("unit".into(), DelayModel::Unit),
        (
            "uniform[1,10] seed 1".into(),
            DelayModel::UniformRandom {
                min: 1,
                max: 10,
                seed: 1,
            },
        ),
        (
            "uniform[1,10] seed 2".into(),
            DelayModel::UniformRandom {
                min: 1,
                max: 10,
                seed: 2,
            },
        ),
        (
            "per-link[1,25] seed 1".into(),
            DelayModel::PerLinkFixed {
                min: 1,
                max: 25,
                seed: 1,
            },
        ),
    ];
    for (name, delay) in models {
        let config = SimConfig {
            delay,
            ..Default::default()
        };
        let run = run_distributed_mdst(&graph, &initial, config).unwrap();
        table.add_row(vec![
            name,
            run.final_tree.max_degree().to_string(),
            run.metrics.messages_total.to_string(),
            run.metrics.quiescence_time.to_string(),
        ]);
    }
    table
}

/// A3 — the strict paper rule vs the Fürer–Raghavachari extension that also
/// improves blocking degree-(k−1) vertices.
pub fn a3_improvement_policy() -> Table {
    let mut table = Table::new(
        "A3: strict paper rule vs FR blocking-set extension (sequential)",
        &[
            "workload",
            "initial k",
            "strict",
            "with blocking",
            "optimum",
        ],
    );
    let workloads: Vec<(String, Arc<Graph>)> = (0..6u64)
        .map(|seed| {
            (
                format!("gnp(14,0.2)#{seed}"),
                Arc::new(generators::gnp_connected(14, 0.2, seed).unwrap()),
            )
        })
        .collect();
    for (name, graph) in workloads {
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let strict = furer_raghavachari(&graph, &initial, false).unwrap();
        let blocking = furer_raghavachari(&graph, &initial, true).unwrap();
        let optimum = exact_min_degree(&graph).unwrap();
        table.add_row(vec![
            name,
            initial.max_degree().to_string(),
            strict.tree.max_degree().to_string(),
            blocking.tree.max_degree().to_string(),
            optimum.to_string(),
        ]);
    }
    table
}

/// A4 — the discrete-event simulator vs the threaded crossbeam runtime: same
/// messages, different wall time.
pub fn a4_runtime_comparison() -> Table {
    let mut table = Table::new(
        "A4: simulator vs threaded runtime (same protocol, same seeds)",
        &[
            "n",
            "sim messages",
            "thread messages",
            "same tree",
            "sim wall ms",
            "thread wall ms",
        ],
    );
    for &n in &[16usize, 32, 64] {
        let graph = Arc::new(generators::gnp_connected(n, 0.12, 3).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        let t0 = Instant::now();
        let sim = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
        let sim_wall = t0.elapsed();
        let nodes = MdstNode::from_tree(&initial);
        let threaded = ThreadedRuntime::run(&graph, |id, _| nodes[id.index()].clone());
        let thr_tree = collect_tree(&threaded.nodes).unwrap();
        let same = thr_tree
            .edges()
            .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect::<std::collections::BTreeSet<_>>()
            == sim
                .final_tree
                .edges()
                .map(|(u, v)| if u < v { (u, v) } else { (v, u) })
                .collect::<std::collections::BTreeSet<_>>();
        table.add_row(vec![
            n.to_string(),
            sim.metrics.messages_total.to_string(),
            threaded.metrics.messages_total.to_string(),
            same.to_string(),
            fmt_f(sim_wall.as_secs_f64() * 1e3),
            fmt_f(threaded.wall_time.as_secs_f64() * 1e3),
        ]);
    }
    table
}

/// F1 — Figure 1 as a table: the exchange performed on the figure's instance.
pub fn f1_figure1() -> Table {
    let mut table = Table::new(
        "F1: Figure 1 (single exchange on the figure's 6-node instance)",
        &["quantity", "value"],
    );
    let mut builder = GraphBuilder::new(6);
    for (u, v) in [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (3, 5)] {
        builder.add_edge(NodeId(u), NodeId(v)).unwrap();
    }
    let graph = Arc::new(builder.build());
    let parents = vec![
        None,
        Some(NodeId(0)),
        Some(NodeId(0)),
        Some(NodeId(0)),
        Some(NodeId(0)),
        Some(NodeId(1)),
    ];
    let initial = RootedTree::from_parents(NodeId(0), parents).unwrap();
    let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
    table.add_row(vec![
        "initial max degree".into(),
        initial.max_degree().to_string(),
    ]);
    table.add_row(vec![
        "final max degree".into(),
        run.final_tree.max_degree().to_string(),
    ]);
    table.add_row(vec![
        "added edge (the figure's Add)".into(),
        format!(
            "(v3, v5) in tree: {}",
            run.final_tree.has_edge(NodeId(3), NodeId(5))
        ),
    ]);
    table.add_row(vec![
        "deleted edge (the figure's Delete)".into(),
        format!(
            "(v0, v1) in tree: {}",
            run.final_tree.has_edge(NodeId(0), NodeId(1))
        ),
    ]);
    table.add_row(vec!["exchanges".into(), run.improvements.to_string()]);
    table
}

/// F2 — Figure 2 as a table: the BFS wave statistics of one round.
pub fn f2_figure2() -> Table {
    let mut table = Table::new(
        "F2: Figure 2 (BFS wave and cousin-edge discovery on a 10-node instance)",
        &["quantity", "value"],
    );
    let mut builder = GraphBuilder::new(10);
    let tree_edges = [
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 4),
        (4, 7),
        (2, 5),
        (5, 8),
        (3, 6),
        (6, 9),
    ];
    for (u, v) in tree_edges {
        builder.add_edge(NodeId(u), NodeId(v)).unwrap();
    }
    builder.add_edge(NodeId(7), NodeId(8)).unwrap();
    builder.add_edge(NodeId(8), NodeId(9)).unwrap();
    let graph = Arc::new(builder.build());
    let initial = RootedTree::from_edges(
        10,
        NodeId(0),
        &tree_edges.map(|(u, v)| (NodeId(u), NodeId(v))),
    )
    .unwrap();
    let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
    table.add_row(vec![
        "initial max degree".into(),
        initial.max_degree().to_string(),
    ]);
    table.add_row(vec![
        "final max degree".into(),
        run.final_tree.max_degree().to_string(),
    ]);
    table.add_row(vec![
        "BFS wave messages".into(),
        run.metrics.count_of("BFS").to_string(),
    ]);
    table.add_row(vec![
        "cousin replies (outgoing edges seen)".into(),
        run.metrics.count_of("BFSReply").to_string(),
    ]);
    table.add_row(vec![
        "BFSBack convergecast".into(),
        run.metrics.count_of("BFSBack").to_string(),
    ]);
    table
}

/// E9 — the CSR graph substrate against the former nested-vector adjacency,
/// timed on the operations a campaign pays per run: building the topology,
/// sweeping every neighbour list, and preparing a run's topology view (the
/// `Arc::clone` that replaced the per-run adjacency re-materialisation).
/// The criterion sibling lives in `benches/graph_substrate.rs`; this table
/// records the same comparison in the harness output.
pub fn e9_graph_substrate() -> Table {
    use crate::substrate;
    let mut table = Table::new(
        "E9: CSR substrate vs Vec<Vec> adjacency baseline (random_connected(5000, 15000))",
        &["operation", "csr (µs)", "baseline (µs)", "speedup"],
    );
    let (n, edges) = substrate::e9_workload_edges();
    let build_baseline = || substrate::build_baseline_adjacency(n, &edges);
    let build_csr = || substrate::build_csr(n, &edges);
    const REPS: u32 = 5;
    let time_us = |f: &dyn Fn()| {
        let start = Instant::now();
        for _ in 0..REPS {
            f();
        }
        start.elapsed().as_secs_f64() * 1e6 / REPS as f64
    };

    let csr_build = time_us(&|| {
        std::hint::black_box(build_csr());
    });
    let base_build = time_us(&|| {
        std::hint::black_box(build_baseline());
    });
    table.add_row(vec![
        "construction".into(),
        fmt_f(csr_build),
        fmt_f(base_build),
        fmt_f(base_build / csr_build),
    ]);

    let graph = build_csr();
    let baseline = build_baseline();
    let csr_sweep = time_us(&|| {
        let mut acc = 0usize;
        for u in graph.nodes() {
            for &v in graph.neighbor_slice(u) {
                acc = acc.wrapping_add(v.index());
            }
        }
        std::hint::black_box(acc);
    });
    let base_sweep = time_us(&|| {
        let mut acc = 0usize;
        for row in &baseline {
            for &(v, _) in row {
                acc = acc.wrapping_add(v.index());
            }
        }
        std::hint::black_box(acc);
    });
    table.add_row(vec![
        "full neighbour sweep".into(),
        fmt_f(csr_sweep),
        fmt_f(base_sweep),
        fmt_f(base_sweep / csr_sweep),
    ]);

    let shared = Arc::new(graph);
    let arc_view = time_us(&|| {
        std::hint::black_box(Arc::clone(&shared));
    });
    let remat = time_us(&|| {
        let neighbors: Vec<Vec<NodeId>> = (0..n)
            .map(|u| shared.neighbors(NodeId::new(u)).collect())
            .collect();
        std::hint::black_box(neighbors);
    });
    table.add_row(vec![
        "per-run topology view".into(),
        fmt_f(arc_view),
        fmt_f(remat),
        fmt_f(remat / arc_view.max(1e-3)),
    ]);
    table
}

/// E10 — the pool's batched message fabric against the legacy per-message
/// send path, on the deterministic echo-flood workload at two scales. The
/// flood's message count is schedule-independent (see [`crate::fabric`]),
/// so both fabrics move exactly the same load and the throughput ratio
/// isolates the send path: bucketed per-destination flushes with one
/// relaxed in-flight bump per quantum versus one destination lock, one
/// sequentially consistent RMW and one run-queue push per message.
///
/// Besides the table, the experiment writes `BENCH_fabric.json` (machine
/// readable, one record per measured run) to the working directory so CI can
/// archive the numbers. `BENCH_SMOKE=1` shrinks the workloads to CI-smoke
/// size; the criterion sibling lives in `benches/message_fabric.rs`.
pub fn e10_message_fabric() -> Table {
    use crate::fabric;
    let mut table = Table::new(
        "E10: batched message fabric vs legacy per-message sends (pool flood)",
        &[
            "workload", "fabric", "messages", "wall ms", "msgs/sec", "speedup",
        ],
    );
    let reps = if fabric::smoke() { 2 } else { 3 };
    let mut records: Vec<serde::Value> = Vec::new();
    for n in fabric::e10_nodes() {
        let graph = fabric::workload(n);
        let legacy = fabric::best_of(&graph, false, 0, reps);
        let batched = fabric::best_of(&graph, true, 0, reps);
        let speedup = legacy.wall.as_secs_f64() / batched.wall.as_secs_f64().max(1e-9);
        for (name, sample, speedup) in [("legacy", &legacy, 1.0), ("batched", &batched, speedup)] {
            let wall_ms = sample.wall.as_secs_f64() * 1e3;
            table.add_row(vec![
                format!("flood random_connected({n})"),
                name.to_string(),
                sample.messages.to_string(),
                fmt_f(wall_ms),
                fmt_f(sample.msgs_per_sec()),
                fmt_f(speedup),
            ]);
            records.push(serde::Value::Object(vec![
                ("n".into(), serde::Value::UInt(n as u64)),
                ("m".into(), serde::Value::UInt(graph.edge_count() as u64)),
                ("fabric".into(), serde::Value::String(name.to_string())),
                ("messages".into(), serde::Value::UInt(sample.messages)),
                ("wall_ms".into(), serde::Value::Float(wall_ms)),
                (
                    "msgs_per_sec".into(),
                    serde::Value::Float(sample.msgs_per_sec()),
                ),
                ("speedup_vs_legacy".into(), serde::Value::Float(speedup)),
            ]));
        }
    }
    let doc = serde::Value::Object(vec![
        (
            "experiment".into(),
            serde::Value::String("e10_message_fabric".into()),
        ),
        ("smoke".into(), serde::Value::Bool(fabric::smoke())),
        ("runs".into(), serde::Value::Array(records)),
    ]);
    // Best effort: the table is the primary artifact; a read-only working
    // directory must not fail the harness.
    if let Err(e) = std::fs::write("BENCH_fabric.json", doc.to_json_pretty() + "\n") {
        eprintln!("e10: could not write BENCH_fabric.json: {e}");
    }
    table
}

/// E11 — streaming two-pass CSR ingestion against the legacy whole-file
/// parse, at three scales, on a serialised `random_connected` workload. Wall
/// time and an accounted peak-bytes model per path (see [`crate::ingest`]
/// for the model and why a counting allocator is off the table), plus the
/// gzip twin through the chunked decoder with its buffering high-water mark
/// *asserted* under [`crate::ingest::DECODER_HIGH_WATER_CAP`] — the machine-checked
/// form of "streaming gzip ingestion never materialises the edge stream".
///
/// Besides the table, the experiment writes `BENCH_ingest.json` (one record
/// per measured run) for CI to archive. `BENCH_SMOKE=1` shrinks the sweep.
pub fn e11_graph_ingest() -> Table {
    use crate::ingest;
    let mut table = Table::new(
        "E11: streaming CSR ingestion vs legacy whole-file parse (edge list)",
        &[
            "workload",
            "path",
            "edges",
            "wall ms",
            "peak bytes",
            "peak vs legacy",
        ],
    );
    let dir = std::env::temp_dir().join(format!("mdst_e11_{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("e11: could not create {}: {e}", dir.display());
        return table;
    }
    let mut records: Vec<serde::Value> = Vec::new();
    for n in ingest::e11_nodes() {
        let (plain, gz, file_bytes) = ingest::write_workload(n, &dir).unwrap();
        let (legacy_graph, legacy) = ingest::legacy_ingest(&plain).unwrap();
        let (stream_graph, streaming) = ingest::streaming_ingest(&plain).unwrap();
        let (gz_graph, gz_sample) = ingest::streaming_gz_ingest(&gz).unwrap();
        // All three paths must agree on the graph before any timing counts.
        assert_eq!(legacy.edges, streaming.edges, "paths disagree at n={n}");
        assert_eq!(
            legacy.edges, gz_sample.edges,
            "gzip path disagrees at n={n}"
        );
        assert_eq!(legacy_graph.max_degree(), stream_graph.max_degree());
        assert_eq!(stream_graph.memory_bytes(), gz_graph.memory_bytes());
        // The memory-diet regression gates: the streaming path must undercut
        // the legacy peak, and the decoder's buffering must stay bounded no
        // matter how many edges flow through it.
        assert!(
            streaming.peak_bytes < legacy.peak_bytes,
            "streaming peak {} must undercut legacy {} at n={n}",
            streaming.peak_bytes,
            legacy.peak_bytes
        );
        let high_water = gz_sample.decoder_high_water.unwrap_or(usize::MAX);
        assert!(
            high_water <= ingest::DECODER_HIGH_WATER_CAP,
            "gzip decoder buffered {high_water} bytes at n={n} (cap {}): \
             the chunked inflate must never materialise the stream",
            ingest::DECODER_HIGH_WATER_CAP
        );
        for (name, sample) in [
            ("legacy", &legacy),
            ("streaming", &streaming),
            ("streaming .gz", &gz_sample),
        ] {
            let wall_ms = sample.wall.as_secs_f64() * 1e3;
            let ratio = sample.peak_bytes as f64 / legacy.peak_bytes as f64;
            table.add_row(vec![
                format!("random_connected({n}), {file_bytes} B file"),
                name.to_string(),
                sample.edges.to_string(),
                fmt_f(wall_ms),
                sample.peak_bytes.to_string(),
                fmt_f(ratio),
            ]);
            records.push(serde::Value::Object(vec![
                ("n".into(), serde::Value::UInt(n as u64)),
                ("m".into(), serde::Value::UInt(sample.edges as u64)),
                ("file_bytes".into(), serde::Value::UInt(file_bytes as u64)),
                ("path".into(), serde::Value::String(name.to_string())),
                ("wall_ms".into(), serde::Value::Float(wall_ms)),
                (
                    "peak_bytes".into(),
                    serde::Value::UInt(sample.peak_bytes as u64),
                ),
                (
                    "decoder_high_water".into(),
                    match sample.decoder_high_water {
                        Some(hw) => serde::Value::UInt(hw as u64),
                        None => serde::Value::Null,
                    },
                ),
                ("peak_vs_legacy".into(), serde::Value::Float(ratio)),
            ]));
        }
        let _ = std::fs::remove_file(&plain);
        let _ = std::fs::remove_file(&gz);
    }
    let _ = std::fs::remove_dir(&dir);
    let doc = serde::Value::Object(vec![
        (
            "experiment".into(),
            serde::Value::String("e11_graph_ingest".into()),
        ),
        ("smoke".into(), serde::Value::Bool(crate::fabric::smoke())),
        ("runs".into(), serde::Value::Array(records)),
    ]);
    // Best effort, same policy as E10: the table is the primary artifact.
    if let Err(e) = std::fs::write("BENCH_ingest.json", doc.to_json_pretty() + "\n") {
        eprintln!("e11: could not write BENCH_ingest.json: {e}");
    }
    table
}

/// An experiment: a nullary function producing its table.
pub type ExperimentFn = fn() -> Table;

/// All experiments in DESIGN.md order.
pub fn all_experiments() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("f1", f1_figure1 as ExperimentFn),
        ("f2", f2_figure2),
        ("e1", e1_message_scaling),
        ("e2", e2_time_scaling),
        ("e3", e3_round_breakdown),
        ("e4", e4_message_size),
        ("e5", e5_approximation_quality),
        ("e6", e6_kmz_comparison),
        ("e7", e7_initial_tree_sensitivity),
        ("e9", e9_graph_substrate),
        ("e10", e10_message_fabric),
        ("e11", e11_graph_ingest),
        ("a1", a1_algorithm_comparison),
        ("a2", a2_delay_sensitivity),
        ("a3", a3_improvement_policy),
        ("a4", a4_runtime_comparison),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_experiment_produces_a_non_empty_table() {
        // Run only the cheap ones exhaustively here; the expensive sweeps are
        // covered by the harness smoke test in CI-style runs.
        for (id, run) in [
            ("f1", f1_figure1 as ExperimentFn),
            ("f2", f2_figure2),
            ("e4", e4_message_size),
            ("e6", e6_kmz_comparison),
            ("e7", e7_initial_tree_sensitivity),
            ("a2", a2_delay_sensitivity),
            ("a3", a3_improvement_policy),
        ] {
            let table = run();
            assert!(!table.is_empty(), "{id}");
            assert!(table.render().contains('|'), "{id}");
        }
    }

    #[test]
    fn experiment_registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 16);
        let ids: std::collections::BTreeSet<&str> = all.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids.len(), all.len());
    }
}
