//! # mdst-bench
//!
//! Experiment harness of the reproduction. The paper contains no measured
//! tables (it is a theory paper), so each experiment here turns one of its
//! analytical claims or illustrative figures into a measurable series; the
//! mapping is documented in DESIGN.md §6 and the recorded results in
//! EXPERIMENTS.md.
//!
//! The `harness` binary prints the tables (`cargo run -p mdst-bench --release
//! --bin harness -- all`); the Criterion benches under `benches/` measure the
//! wall-clock cost of representative configurations of the same experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod fabric;
pub mod ingest;
pub mod substrate;
pub mod table;

pub use experiments::*;
pub use table::Table;
