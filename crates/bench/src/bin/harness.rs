//! Experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! ```text
//! cargo run -p mdst-bench --release --bin harness -- all
//! cargo run -p mdst-bench --release --bin harness -- e1 e6
//! ```

use mdst_bench::all_experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let registry = all_experiments();
    let selected: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        registry.iter().map(|(id, _)| *id).collect()
    } else {
        args.iter().map(String::as_str).collect()
    };
    let mut unknown = Vec::new();
    for id in &selected {
        match registry.iter().find(|(rid, _)| rid == id) {
            Some((_, run)) => {
                let table = run();
                println!("{}", table.render());
            }
            None => unknown.push(id.to_string()),
        }
    }
    if !unknown.is_empty() {
        eprintln!(
            "unknown experiment id(s): {} (known: {})",
            unknown.join(", "),
            registry
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(", ")
        );
        std::process::exit(1);
    }
}
