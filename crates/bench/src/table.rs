//! Minimal fixed-width table rendering for the harness output.

/// A simple text table: a header row plus data rows, rendered with columns
/// padded to their widest cell.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one data row (must have as many cells as the header).
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as text (markdown-flavoured pipes).
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("## {}\n\n", self.title);
        let render_row = |cells: &[String]| {
            let body: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&render_row(&self.header));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&render_row(row));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "messages"]);
        t.add_row(vec!["8".to_string(), "123".to_string()]);
        t.add_row(vec!["128".to_string(), "4".to_string()]);
        let text = t.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("| 128 |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.add_row(vec!["1".to_string()]);
    }
}
