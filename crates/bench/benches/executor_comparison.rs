//! Criterion experiment E8: the executor backends on a 1,000-node random
//! graph. The flooding broadcast compares raw substrate throughput on the
//! same deterministic message load (2m + n − 1 messages whatever the
//! schedule); the MDegST improvement compares the simulator against the pool
//! on the full protocol, the regime the pool was built for. Thread-per-node
//! gets its own small group at n = 128: 1,000 OS threads is exactly the
//! cost the pool exists to avoid, and on a small host the context-switch
//! storm would dominate the whole suite (one data point says enough).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::core::distributed::MdstNode;
use mdst::prelude::*;
use mdst::spanning::flooding::FloodingSt;
use std::sync::Arc;

const N: usize = 1_000;

fn bench_flood_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_executor_flood_1k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let graph = Arc::new(generators::random_connected(N, N / 2, 11).unwrap());
    group.bench_with_input(BenchmarkId::new("sim", N), &N, |b, _| {
        b.iter(|| {
            let mut sim = Simulator::new(&graph, SimConfig::default(), |id, _| {
                FloodingSt::new(id, NodeId(0))
            })
            .unwrap();
            sim.run().unwrap();
            std::hint::black_box(sim.metrics().messages_total)
        })
    });
    for workers in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new(format!("pool{workers}"), N), &N, |b, _| {
            b.iter(|| {
                let run = PoolRuntime::run(
                    &graph,
                    |id, _| FloodingSt::new(id, NodeId(0)),
                    &PoolConfig {
                        workers,
                        ..Default::default()
                    },
                )
                .unwrap();
                std::hint::black_box(run.metrics.messages_total)
            })
        });
    }
    group.finish();
}

fn bench_thread_per_node_small(c: &mut Criterion) {
    // One OS thread per node stops scaling long before the pool does; this
    // group pins the comparison at a size every host can still schedule.
    const SMALL: usize = 128;
    let mut group = c.benchmark_group("e8_executor_flood_threaded_128");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let graph = Arc::new(generators::random_connected(SMALL, SMALL / 2, 11).unwrap());
    group.bench_with_input(BenchmarkId::new("threaded", SMALL), &SMALL, |b, _| {
        b.iter(|| {
            let run = ThreadedRuntime::run(&graph, |id, _| FloodingSt::new(id, NodeId(0)));
            std::hint::black_box(run.metrics.messages_total)
        })
    });
    group.bench_with_input(BenchmarkId::new("pool8", SMALL), &SMALL, |b, _| {
        b.iter(|| {
            let run = PoolRuntime::run(
                &graph,
                |id, _| FloodingSt::new(id, NodeId(0)),
                &PoolConfig {
                    workers: 8,
                    ..Default::default()
                },
            )
            .unwrap();
            std::hint::black_box(run.metrics.messages_total)
        })
    });
    group.finish();
}

fn bench_mdst_improvement(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_executor_mdst_1k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(2000));
    let graph = Arc::new(generators::random_connected(N, N / 4, 11).unwrap());
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    group.bench_with_input(BenchmarkId::new("sim", N), &N, |b, _| {
        b.iter(|| {
            let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
            std::hint::black_box(run.final_tree.max_degree())
        })
    });
    for workers in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new(format!("pool{workers}"), N), &N, |b, _| {
            b.iter(|| {
                let nodes = MdstNode::from_tree(&initial);
                let run = PoolRuntime::run(
                    &graph,
                    |id, _| nodes[id.index()].clone(),
                    &PoolConfig {
                        workers,
                        ..Default::default()
                    },
                )
                .unwrap();
                std::hint::black_box(run.metrics.messages_total)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_flood_broadcast,
    bench_thread_per_node_small,
    bench_mdst_improvement
);
criterion_main!(benches);
