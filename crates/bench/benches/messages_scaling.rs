//! Criterion counterpart of experiment E1: wall-clock and message cost of the
//! full improvement run as n grows (the O((k − k*)·m) claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

fn bench_messages_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_messages_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[16usize, 32, 64] {
        let graph = Arc::new(generators::star_with_leaf_edges(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::new("star_plus_path", n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box(run.metrics.messages_total)
            })
        });
        let gnp = Arc::new(generators::gnp_connected(n, 0.1, 7).unwrap());
        let gnp_initial = algorithms::greedy_high_degree_tree(&gnp, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::new("gnp_0.1", n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&gnp, &gnp_initial, SimConfig::default()).unwrap();
                std::hint::black_box(run.metrics.messages_total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_messages_scaling);
criterion_main!(benches);
