//! Criterion counterpart of experiment E6: the full run on complete graphs,
//! whose message cost §5 compares against the Korach–Moran–Zaks Ω(n²/k) bound.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

fn bench_kmz(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_kmz_complete_graphs");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[8usize, 16, 32] {
        let graph = Arc::new(generators::complete(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box(kmz_ratio(
                    run.metrics.messages_total,
                    n,
                    run.final_tree.max_degree(),
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kmz);
criterion_main!(benches);
