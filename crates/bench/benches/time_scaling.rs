//! Criterion counterpart of experiment E2: the O((k − k*)·n) time claim,
//! measured as the simulated causal time of the improvement run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

fn bench_time_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_time_scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[16usize, 32, 64] {
        let graph = Arc::new(generators::star_with_leaf_edges(n).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box(run.metrics.quiescence_time)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_time_scaling);
criterion_main!(benches);
