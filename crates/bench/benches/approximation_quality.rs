//! Criterion counterpart of experiment E5: cost of the quality oracles — the
//! exact branch-and-bound solver and the sequential baselines — on small
//! instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

fn bench_approximation_quality(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_approximation_quality");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[8usize, 10, 12] {
        let graph = Arc::new(generators::gnp_connected(n, 0.3, 4).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(exact_min_degree(&graph).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("paper_rule_seq", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    paper_local_search(&graph, &initial)
                        .unwrap()
                        .tree
                        .max_degree(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("furer_raghavachari", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    furer_raghavachari(&graph, &initial, true)
                        .unwrap()
                        .tree
                        .max_degree(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("distributed", n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box(run.final_tree.max_degree())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_approximation_quality);
criterion_main!(benches);
