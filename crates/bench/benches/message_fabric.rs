//! Criterion experiment E10: the pool's batched message fabric against the
//! legacy per-message send path, plus a small sweep over the drain-batch
//! knob. The echo flood's message count is schedule-independent (see
//! `mdst_bench::fabric`), so every configuration pays for the same load and
//! the timing differences are pure send-path cost. The harness sibling (with
//! the 50k workload and the `BENCH_fabric.json` artifact) is
//! `mdst_bench::experiments::e10_message_fabric`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst_bench::fabric;
use std::hint::black_box;

const N: usize = 2_000;

fn bench_fabric_vs_legacy(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fabric_flood_2k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let graph = fabric::workload(N);
    group.bench_with_input(BenchmarkId::new("legacy", N), &N, |b, _| {
        b.iter(|| black_box(fabric::flood_on_pool(&graph, false, 0).messages))
    });
    group.bench_with_input(BenchmarkId::new("batched", N), &N, |b, _| {
        b.iter(|| black_box(fabric::flood_on_pool(&graph, true, 0).messages))
    });
    group.finish();
}

fn bench_batch_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_fabric_batch_sweep_2k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let graph = fabric::workload(N);
    for batch in [1usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("batch", batch), &batch, |b, &batch| {
            b.iter(|| black_box(fabric::flood_on_pool(&graph, true, batch).messages))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fabric_vs_legacy, bench_batch_sweep);
criterion_main!(benches);
