//! Criterion counterpart of experiment E3: cost of a single round (one
//! SearchDegree + Cut/BFS/Choose cycle), isolated by running the protocol on a
//! tree that admits exactly one improvement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

/// A graph and tree where only one exchange is possible: the hub's degree can
/// drop exactly once, so a run is "one working round plus one closing round".
fn one_improvement_instance(branches: usize) -> (Arc<Graph>, RootedTree) {
    let graph = Arc::new(generators::high_optimum(branches, 2).unwrap());
    // Add one extra edge between the tips of the first two branches so exactly
    // one exchange becomes available when the initial tree hangs both branch
    // interiors off the hub... the simplest such instance is the wheel.
    let graph = {
        let _ = graph;
        Arc::new(generators::wheel(branches + 1).unwrap())
    };
    let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
    (graph, initial)
}

fn bench_round_cost(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_round_cost");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[16usize, 32, 64] {
        let (graph, initial) = one_improvement_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box((run.rounds, run.metrics.messages_total))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_round_cost);
criterion_main!(benches);
