//! Criterion experiment E9: the CSR graph substrate against the former
//! `Vec<Vec<(NodeId, EdgeId)>>` adjacency baseline, on the two operations a
//! campaign pays per run — building the topology and iterating neighbours.
//!
//! Construction compares `GraphBuilder::build` (CSR assembly) with the
//! shared pre-CSR baseline replica from `mdst_bench::substrate` (the same
//! fixture the harness E9 table measures, so the two reports cannot drift).
//! Iteration compares a full neighbour sweep through the CSR rows (both the
//! iterator and the zero-copy `neighbor_slice` view the executors use)
//! against the same sweep over the baseline nested vectors. The third group
//! measures what the `Arc<Graph>` sharing actually removed: the per-run
//! adjacency re-materialisation every backend used to perform versus the
//! `Arc::clone` that replaced it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

use mdst_bench::substrate::{build_baseline_adjacency, build_csr, e9_workload_edges};

fn bench_construction(c: &mut Criterion) {
    let (n, edges) = e9_workload_edges();
    let mut group = c.benchmark_group("e9_graph_construction_5k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_with_input(BenchmarkId::new("csr", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(build_csr(n, &edges)))
    });
    group.bench_with_input(BenchmarkId::new("baseline_vecvec", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(build_baseline_adjacency(n, &edges)))
    });
    group.finish();
}

fn bench_neighbor_iteration(c: &mut Criterion) {
    let (n, edges) = e9_workload_edges();
    let graph = build_csr(n, &edges);
    let baseline = build_baseline_adjacency(n, &edges);
    let mut group = c.benchmark_group("e9_neighbor_sweep_5k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.bench_with_input(BenchmarkId::new("csr_iter", n), &n, |b, _| {
        b.iter(|| {
            let mut acc = 0usize;
            for u in graph.nodes() {
                for v in graph.neighbors(u) {
                    acc = acc.wrapping_add(v.index());
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_with_input(BenchmarkId::new("csr_slice", n), &n, |b, _| {
        b.iter(|| {
            let mut acc = 0usize;
            for u in graph.nodes() {
                for &v in graph.neighbor_slice(u) {
                    acc = acc.wrapping_add(v.index());
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_with_input(BenchmarkId::new("baseline_vecvec", n), &n, |b, _| {
        b.iter(|| {
            let mut acc = 0usize;
            for row in &baseline {
                for &(v, _) in row {
                    acc = acc.wrapping_add(v.index());
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

fn bench_per_run_topology_cost(c: &mut Criterion) {
    let (n, edges) = e9_workload_edges();
    let graph = Arc::new(build_csr(n, &edges));
    let mut group = c.benchmark_group("e9_per_run_topology_5k");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(200));
    group.measurement_time(std::time::Duration::from_millis(1500));
    // What every backend used to do once per run.
    group.bench_with_input(BenchmarkId::new("rematerialize", n), &n, |b, _| {
        b.iter(|| {
            let neighbors: Vec<Vec<NodeId>> = (0..n)
                .map(|u| graph.neighbors(NodeId::new(u)).collect())
                .collect();
            std::hint::black_box(neighbors)
        })
    });
    // What a run costs now.
    group.bench_with_input(BenchmarkId::new("arc_clone", n), &n, |b, _| {
        b.iter(|| std::hint::black_box(Arc::clone(&graph)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_construction,
    bench_neighbor_iteration,
    bench_per_run_topology_cost
);
criterion_main!(benches);
