//! Criterion counterpart of experiment E7: full pipeline cost per initial
//! spanning-tree construction on the same graph.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::prelude::*;
use std::sync::Arc;

fn bench_initial_tree_sensitivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_initial_tree_sensitivity");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let graph = Arc::new(generators::gnp_connected(48, 0.1, 77).unwrap());
    for kind in InitialTreeKind::all(9) {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.label()),
            &kind,
            |b, &kind| {
                b.iter(|| {
                    // Construction + strict improvement, like every other
                    // measured loop: no session extras (survivor grading,
                    // report assembly) inflating the e7 baselines.
                    let (initial, _metrics) = build_initial_tree(&graph, NodeId(0), kind).unwrap();
                    let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                    std::hint::black_box((run.rounds, run.final_tree.max_degree()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_initial_tree_sensitivity);
criterion_main!(benches);
