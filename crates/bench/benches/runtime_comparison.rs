//! Criterion counterpart of ablation A4: the discrete-event simulator vs the
//! threaded crossbeam runtime executing the same protocol on the same
//! instance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mdst::core::distributed::MdstNode;
use mdst::prelude::*;
use std::sync::Arc;

fn bench_runtime_comparison(c: &mut Criterion) {
    let mut group = c.benchmark_group("a4_runtime_comparison");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for &n in &[16usize, 32] {
        let graph = Arc::new(generators::gnp_connected(n, 0.15, 3).unwrap());
        let initial = algorithms::greedy_high_degree_tree(&graph, NodeId(0)).unwrap();
        group.bench_with_input(BenchmarkId::new("simulator", n), &n, |b, _| {
            b.iter(|| {
                let run = run_distributed_mdst(&graph, &initial, SimConfig::default()).unwrap();
                std::hint::black_box(run.final_tree.max_degree())
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, _| {
            b.iter(|| {
                let nodes = MdstNode::from_tree(&initial);
                let run = ThreadedRuntime::run(&graph, |id, _| nodes[id.index()].clone());
                std::hint::black_box(run.metrics.messages_total)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime_comparison);
criterion_main!(benches);
